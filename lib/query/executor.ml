module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Ast = Vnl_sql.Ast

exception Query_error = Plan.Query_error

let fail fmt = Printf.ksprintf (fun s -> raise (Query_error s)) fmt

type result = Plan.result = { columns : string list; rows : Value.t list list }

(* A source row is the concatenation of one tuple per FROM table. *)
type binding = {
  label : string;  (** Alias if given, else table name. *)
  schema : Schema.t;
  offset : int;  (** Position of this table's first attribute in the row. *)
}

let bindings_of_from db from =
  let offset = ref 0 in
  List.map
    (fun (table_name, alias) ->
      let table =
        match Database.table db table_name with
        | Some t -> t
        | None -> fail "no such table %S" table_name
      in
      let schema = Table.schema table in
      let binding =
        {
          label = (match alias with Some a -> a | None -> table_name);
          schema;
          offset = !offset;
        }
      in
      offset := !offset + Schema.arity schema;
      (table, binding))
    from

(* Resolve (qualifier, column) to a row position, checking ambiguity. *)
let resolver bindings =
  let find q name =
    let candidates =
      List.filter_map
        (fun b ->
          match q with
          | Some q when not (String.equal q b.label) -> None
          | _ -> (
            match Schema.index_of_opt b.schema name with
            | Some i -> Some (b.offset + i)
            | None -> None))
        bindings
    in
    match candidates with
    | [ pos ] -> pos
    | [] ->
      let q = match q with Some q -> q ^ "." | None -> "" in
      raise (Eval.Eval_error (Printf.sprintf "unknown column %s%s" q name))
    | _ :: _ :: _ ->
      raise (Eval.Eval_error (Printf.sprintf "ambiguous column %s" name))
  in
  let cache = Hashtbl.create 16 in
  fun q name ->
    let key = (q, name) in
    match Hashtbl.find_opt cache key with
    | Some pos -> pos
    | None ->
      let pos = find q name in
      Hashtbl.add cache key pos;
      pos

(* ---------- Access-path selection ---------- *)

let rec conjuncts = function
  | Ast.Binop (Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Evaluate an expression that must not reference any column (literals,
   parameters, arithmetic over them). *)
let const_eval ~params e =
  match Eval.eval { Eval.resolve = Eval.no_columns; params } e with
  | v -> Some v
  | exception Eval.Eval_error _ -> None

(* Top-level [col = constant] conjuncts binding attributes of the table
   labeled [label]. *)
let equality_bindings ~params ~label where =
  match where with
  | None -> []
  | Some w ->
    List.filter_map
      (fun c ->
        let pair =
          match c with
          | Ast.Binop (Ast.Eq, Ast.Col (q, name), e) -> Some (q, name, e)
          | Ast.Binop (Ast.Eq, e, Ast.Col (q, name)) -> Some (q, name, e)
          | _ -> None
        in
        match pair with
        | Some (q, name, e) when q = None || q = Some label -> (
          match const_eval ~params e with Some v -> Some (name, v) | None -> None)
        | Some _ | None -> None)
      (conjuncts w)

type access =
  | Full_scan
  | Unique_probe of Value.t list
  | Index_scan of string * Value.t list  (** Index name and probe values. *)

let describe_access table = function
  | Full_scan -> Printf.sprintf "%s: full scan" (Table.name table)
  | Unique_probe _ -> Printf.sprintf "%s: unique-key probe" (Table.name table)
  | Index_scan (name, _) ->
    Printf.sprintf "%s: index scan via %s" (Table.name table) name

(* Pick the cheapest applicable access path given equality-bound
   attributes: unique-key probe, then the longest covered secondary index,
   then a scan.  The full WHERE still runs as a residual filter, so the
   choice affects cost only, never results. *)
let choose_access table bound =
  let schema = Table.schema table in
  let key_attrs =
    List.map (fun i -> (Schema.attribute schema i).Schema.name) (Schema.key_indices schema)
  in
  let value_of attr = List.assoc_opt attr bound in
  let all_key_values = List.map value_of key_attrs in
  if
    Table.has_key table && key_attrs <> []
    && List.for_all Option.is_some all_key_values
  then Unique_probe (List.map Option.get all_key_values)
  else
    match Table.index_covering table (List.map fst bound) with
    | Some name ->
      let attrs = Table.index_attrs table name in
      Index_scan (name, List.map (fun a -> Option.get (value_of a)) attrs)
    | None -> Full_scan

let rows_via_access table access =
  match access with
  | Full_scan ->
    let acc = ref [] in
    Table.scan table (fun _ tuple -> acc := tuple :: !acc);
    List.rev !acc
  | Unique_probe key -> (
    match Table.find_by_key table key with Some (_, t) -> [ t ] | None -> [])
  | Index_scan (name, values) ->
    List.filter_map (fun rid -> Table.get table rid) (Table.index_lookup table ~name values)

(* The per-table access plan for a SELECT. *)
let plan_of db ~params (s : Ast.select) =
  let pairs = bindings_of_from db s.Ast.from in
  (match pairs with [] -> fail "empty FROM clause" | _ -> ());
  List.map
    (fun (table, binding) ->
      let bound = equality_bindings ~params ~label:binding.label s.Ast.where in
      (table, binding, choose_access table bound))
    pairs

(* Materialize the filtered cross product of the FROM tables, each accessed
   through its chosen path. *)
let source_rows db ~params (s : Ast.select) =
  let plan = plan_of db ~params s in
  let bindings = List.map (fun (_, b, _) -> b) plan in
  let resolve_pos = resolver bindings in
  let env_of row =
    { Eval.resolve = (fun q name -> row.(resolve_pos q name)); params }
  in
  let rows = ref [] in
  let rec product acc = function
    | [] ->
      let row = Array.concat (List.rev acc) in
      let keep =
        match s.Ast.where with
        | None -> true
        | Some pred -> Eval.eval_pred (env_of row) pred
      in
      if keep then rows := row :: !rows
    | (table, _, access) :: rest ->
      List.iter
        (fun tuple -> product (Array.of_list (Tuple.values tuple) :: acc) rest)
        (rows_via_access table access)
  in
  product [] plan;
  (List.rev !rows, env_of, bindings)

let explain db ?(params = []) (s : Ast.select) =
  let plan = plan_of db ~params s in
  String.concat "\n" (List.map (fun (table, _, access) -> describe_access table access) plan)

let explain_string db ?params src = explain db ?params (Vnl_sql.Parser.parse_select src)

(* Evaluate an expression that may contain aggregates over a group. *)
let rec eval_agg env_of group (e : Ast.expr) =
  (* The representative row backs non-aggregate leaves; a pure-aggregate
     expression over an empty group (e.g. COUNT on an empty table) never
     forces it. *)
  let rep_env () =
    match group with
    | row :: _ -> env_of row
    | [] -> { Eval.resolve = Eval.no_columns; params = [] }
  in
  match e with
  | Ast.Agg (kind, arg) -> compute_aggregate env_of group kind arg
  | Ast.Lit _ | Ast.Col _ | Ast.Param _ -> Eval.eval (rep_env ()) e
  | Ast.Binop (op, a, b) ->
    let va = eval_agg env_of group a and vb = eval_agg env_of group b in
    Eval.eval (rep_env ()) (Ast.Binop (op, Ast.Lit va, Ast.Lit vb))
  | Ast.Unop (op, a) ->
    Eval.eval (rep_env ()) (Ast.Unop (op, Ast.Lit (eval_agg env_of group a)))
  | Ast.Case (arms, default) ->
    let rec arm = function
      | [] -> (
        match default with Some d -> eval_agg env_of group d | None -> Value.Null)
      | (cond, value) :: rest ->
        if Eval.truthy (eval_agg env_of group cond) then eval_agg env_of group value
        else arm rest
    in
    arm arms
  | Ast.Is_null a -> Value.Bool (Value.is_null (eval_agg env_of group a))
  | Ast.Is_not_null a -> Value.Bool (not (Value.is_null (eval_agg env_of group a)))
  | Ast.In (a, cands) ->
    Eval.eval (rep_env ())
      (Ast.In (Ast.Lit (eval_agg env_of group a), List.map (fun c -> Ast.Lit (eval_agg env_of group c)) cands))
  | Ast.Between (a, lo, hi) ->
    Eval.eval (rep_env ())
      (Ast.Between
         ( Ast.Lit (eval_agg env_of group a),
           Ast.Lit (eval_agg env_of group lo),
           Ast.Lit (eval_agg env_of group hi) ))
  | Ast.Like (a, pat) -> Eval.eval (rep_env ()) (Ast.Like (Ast.Lit (eval_agg env_of group a), pat))

and compute_aggregate env_of group kind arg =
  let values =
    match arg with
    | None -> List.map (fun _ -> Value.Int 1) group
    | Some e -> List.map (fun row -> Eval.eval (env_of row) e) group
  in
  let present = List.filter (fun v -> not (Value.is_null v)) values in
  match kind with
  | Ast.Count ->
    Value.Int (match arg with None -> List.length group | Some _ -> List.length present)
  | Ast.Sum -> (
    match present with
    | [] -> Value.Null
    | first :: rest -> List.fold_left Value.add first rest)
  | Ast.Min -> (
    match present with
    | [] -> Value.Null
    | first :: rest -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) first rest)
  | Ast.Max -> (
    match present with
    | [] -> Value.Null
    | first :: rest -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) first rest)
  | Ast.Avg -> (
    match present with
    | [] -> Value.Null
    | vs ->
      let total = List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs in
      Value.Float (total /. float_of_int (List.length vs)))

let item_label i = function
  | Ast.Star -> fail "SELECT * cannot be labeled"
  | Ast.Item (_, Some alias) -> alias
  | Ast.Item (Ast.Col (_, name), None) -> name
  | Ast.Item (Ast.Agg (kind, _), None) ->
    String.lowercase_ascii
      (match kind with
      | Ast.Sum -> "sum"
      | Ast.Count -> "count"
      | Ast.Min -> "min"
      | Ast.Max -> "max"
      | Ast.Avg -> "avg")
  | Ast.Item (_, None) -> Printf.sprintf "col%d" i

(* Expand SELECT * into explicit column items using the FROM bindings. *)
let expand_items bindings items =
  List.concat_map
    (fun item ->
      match item with
      | Ast.Star ->
        List.concat_map
          (fun b ->
            List.map
              (fun a -> Ast.Item (Ast.Col (Some b.label, a.Schema.name), Some a.Schema.name))
              (Schema.attributes b.schema))
          bindings
      | Ast.Item _ -> [ item ])
    items

let grouped (s : Ast.select) =
  s.Ast.group_by <> []
  || List.exists
       (function Ast.Star -> false | Ast.Item (e, _) -> Ast.has_aggregate e)
       s.Ast.items
  || match s.Ast.having with Some e -> Ast.has_aggregate e | None -> false

module Keymap = Map.Make (struct
  type t = Value.t list

  let compare a b =
    let rec loop xs ys =
      match (xs, ys) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: xs, y :: ys ->
        let c = Value.compare x y in
        if c <> 0 then c else loop xs ys
    in
    loop a b
end)

let dedupe rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun row ->
      let key = List.map Value.to_string row in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    rows

let compare_value_lists a b =
  let rec loop xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c <> 0 then c else loop xs ys
  in
  loop a b

let query db ?(params = []) (s : Ast.select) =
  let rows, env_of, bindings = source_rows db ~params s in
  let items = expand_items bindings s.Ast.items in
  let columns = List.mapi item_label items in
  let exprs =
    List.map (function Ast.Item (e, _) -> e | Ast.Star -> assert false) items
  in
  let projected_with_order =
    if grouped s then begin
      (* Partition rows into groups keyed by the GROUP BY expressions. *)
      let groups = ref Keymap.empty and order = ref [] in
      List.iter
        (fun row ->
          let key = List.map (fun e -> Eval.eval (env_of row) e) s.Ast.group_by in
          (match Keymap.find_opt key !groups with
          | None ->
            groups := Keymap.add key [ row ] !groups;
            order := key :: !order
          | Some members -> groups := Keymap.add key (row :: members) !groups))
        rows;
      let keys = List.rev !order in
      let group_rows =
        List.map (fun key -> List.rev (Keymap.find key !groups)) keys
      in
      (* SQL semantics: a global aggregate (no GROUP BY) over an empty input
         still yields one row, e.g. COUNT star = 0. *)
      let group_rows =
        if group_rows = [] && s.Ast.group_by = [] then [ [] ] else group_rows
      in
      let survives group =
        match s.Ast.having with
        | None -> true
        | Some pred -> Eval.truthy (eval_agg env_of group pred)
      in
      List.filter_map
        (fun group ->
          if survives group then
            let out = List.map (fun e -> eval_agg env_of group e) exprs in
            let sort_key =
              List.map (fun (e, _) -> eval_agg env_of group e) s.Ast.order_by
            in
            Some (out, sort_key)
          else None)
        group_rows
    end
    else
      List.map
        (fun row ->
          let out = List.map (fun e -> Eval.eval (env_of row) e) exprs in
          let sort_key =
            List.map (fun (e, _) -> Eval.eval (env_of row) e) s.Ast.order_by
          in
          (out, sort_key))
        rows
  in
  let sorted =
    match s.Ast.order_by with
    | [] -> List.map fst projected_with_order
    | order_by ->
      let directions = List.map snd order_by in
      let cmp (_, ka) (_, kb) =
        let rec loop ks1 ks2 dirs =
          match (ks1, ks2, dirs) with
          | [], [], _ -> 0
          | k1 :: r1, k2 :: r2, dir :: rd ->
            let c = Value.compare k1 k2 in
            let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else loop r1 r2 rd
          | _ -> 0
        in
        loop ka kb directions
      in
      List.map fst (List.stable_sort cmp projected_with_order)
  in
  let deduped = if s.Ast.distinct then dedupe sorted else sorted in
  let final =
    match s.Ast.limit with
    | None -> deduped
    | Some (n, m) -> List.filteri (fun i _ -> i >= m && i < m + n) deduped
  in
  { columns; rows = final }

(* The string entry point goes through the prepared-statement cache: parse
   and compilation are paid once per distinct statement, re-executions run
   compiled closures.  [query] above remains the interpreter the
   differential tests compare against. *)
let query_string db ?params src = Prepared.exec db ?params src

let sort_rows r = { r with rows = List.sort compare_value_lists r.rows }

let result_equal a b =
  List.equal String.equal a.columns b.columns
  && List.equal
       (fun x y -> compare_value_lists x y = 0)
       (sort_rows a).rows (sort_rows b).rows

let pp_result ppf r =
  let cells = List.map (List.map Value.to_string) r.rows in
  Format.pp_print_string ppf (Vnl_util.Ascii_table.render ~header:r.columns cells)
