module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Ast = Vnl_sql.Ast

exception Query_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Query_error s)) fmt

let efail fmt = Printf.ksprintf (fun s -> raise (Eval.Eval_error s)) fmt

type result = { columns : string list; rows : Value.t list list }

(* ---------- runtime representation ---------- *)

(* One source row: one tuple per FROM table (resolved positionally at
   compile time) plus the parameter bindings, pre-resolved to slots. *)
type rt = { tuples : Tuple.t array; params : Value.t option array }

(* A compiled scalar expression: either folded to a constant at prepare
   time or a closure over the runtime row. *)
type ce = Const of Value.t | Dyn of (rt -> Value.t)

let to_fn = function Const v -> fun _ -> v | Dyn f -> f

let is_const = function Const _ -> true | Dyn _ -> false

let dummy_rt = { tuples = [||]; params = [||] }

(* Fold a node whose children are all constants by running its closure now.
   An exception is captured and re-raised on evaluation instead, preserving
   the interpreter's lazy error semantics: a failing constant expression in
   a query that produces no rows never surfaces. *)
let fold_if children f =
  if List.for_all is_const children then
    match f dummy_rt with
    | v -> Const v
    | exception e -> Dyn (fun _ -> raise e)
  else Dyn f

(* ---------- compile-time context ---------- *)

type binding = {
  label : string;  (** Alias if given, else table name. *)
  schema : Schema.t;
  source : int;  (** Index of this table's tuple in [rt.tuples]. *)
}

(* Parameter names are interned into slots shared by every compiled
   expression of the plan; [rt.params] is indexed by slot. *)
type pctx = { slots : (string, int) Hashtbl.t }

type ctx = { bindings : binding list; pctx : pctx }

let param_slot pctx name =
  match Hashtbl.find_opt pctx.slots name with
  | Some i -> i
  | None ->
    let i = Hashtbl.length pctx.slots in
    Hashtbl.add pctx.slots name i;
    i

(* Resolve (qualifier, column) to (source, attribute) with the interpreter's
   ambiguity rule.  Failures are deferred to evaluation time: the
   interpreter only reports an unknown column when a row forces it. *)
let resolve ctx q name =
  let candidates =
    List.filter_map
      (fun b ->
        match q with
        | Some q when not (String.equal q b.label) -> None
        | _ -> (
          match Schema.index_of_opt b.schema name with
          | Some i -> Some (b.source, i)
          | None -> None))
      ctx.bindings
  in
  match candidates with
  | [ pos ] -> Ok pos
  | [] ->
    let q = match q with Some q -> q ^ "." | None -> "" in
    Error (Printf.sprintf "unknown column %s%s" q name)
  | _ :: _ :: _ -> Error (Printf.sprintf "ambiguous column %s" name)

let div_vals va vb =
  try Value.div va vb with Division_by_zero -> efail "division by zero"

(* ---------- row-context compilation (mirrors Eval.eval) ---------- *)

let rec compile ctx (e : Ast.expr) : ce =
  match e with
  | Ast.Lit v -> Const v
  | Ast.Col (q, name) -> (
    match resolve ctx q name with
    | Ok (si, ai) -> Dyn (fun rt -> Tuple.get rt.tuples.(si) ai)
    | Error msg -> Dyn (fun _ -> raise (Eval.Eval_error msg)))
  | Ast.Param p ->
    let slot = param_slot ctx.pctx p in
    Dyn
      (fun rt ->
        match rt.params.(slot) with
        | Some v -> v
        | None -> efail "unbound parameter :%s" p)
  | Ast.Binop (Ast.And, a, b) -> binop ctx Eval.and3 a b
  | Ast.Binop (Ast.Or, a, b) -> binop ctx Eval.or3 a b
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) ->
    binop ctx (Eval.compare_op op) a b
  | Ast.Binop (Ast.Add, a, b) -> binop ctx Value.add a b
  | Ast.Binop (Ast.Sub, a, b) -> binop ctx Value.sub a b
  | Ast.Binop (Ast.Mul, a, b) -> binop ctx Value.mul a b
  | Ast.Binop (Ast.Div, a, b) -> binop ctx div_vals a b
  | Ast.Unop (Ast.Not, a) -> unop ctx Eval.not3 a
  | Ast.Unop (Ast.Neg, a) -> unop ctx Value.neg a
  | Ast.Case (arms, default) ->
    let carms = List.map (fun (c, v) -> (compile ctx c, compile ctx v)) arms in
    let cdef = Option.map (compile ctx) default in
    let farms = List.map (fun (c, v) -> (to_fn c, to_fn v)) carms in
    let fdef = match cdef with Some d -> to_fn d | None -> fun _ -> Value.Null in
    let children =
      List.concat_map (fun (c, v) -> [ c; v ]) carms
      @ (match cdef with Some d -> [ d ] | None -> [])
    in
    fold_if children (fun rt ->
        let rec arm = function
          | [] -> fdef rt
          | (fc, fv) :: rest -> if Eval.truthy (fc rt) then fv rt else arm rest
        in
        arm farms)
  | Ast.Agg _ -> Dyn (fun _ -> efail "aggregate used outside of a grouped query")
  | Ast.Is_null a ->
    let ca = compile ctx a in
    let fa = to_fn ca in
    fold_if [ ca ] (fun rt -> Value.Bool (Value.is_null (fa rt)))
  | Ast.Is_not_null a ->
    let ca = compile ctx a in
    let fa = to_fn ca in
    fold_if [ ca ] (fun rt -> Value.Bool (not (Value.is_null (fa rt))))
  | Ast.In (a, cands) ->
    let ca = compile ctx a in
    let cc = List.map (compile ctx) cands in
    let fa = to_fn ca and fc = List.map to_fn cc in
    (* Candidates stay lazy: a NULL subject or an early match skips the
       rest, exactly like the interpreter's scan. *)
    fold_if (ca :: cc) (fun rt ->
        let subject = fa rt in
        if Value.is_null subject then Value.Null
        else
          let rec scan saw_null = function
            | [] -> if saw_null then Value.Null else Value.Bool false
            | f :: rest ->
              let v = f rt in
              if Value.is_null v then scan true rest
              else if Value.compare subject v = 0 then Value.Bool true
              else scan saw_null rest
          in
          scan false fc)
  | Ast.Between (a, lo, hi) ->
    let ca = compile ctx a and clo = compile ctx lo and chi = compile ctx hi in
    let fa = to_fn ca and flo = to_fn clo and fhi = to_fn chi in
    fold_if [ ca; clo; chi ] (fun rt ->
        let v = fa rt in
        Eval.and3
          (Eval.compare_op Ast.Ge v (flo rt))
          (Eval.compare_op Ast.Le v (fhi rt)))
  | Ast.Like (a, pattern) ->
    let ca = compile ctx a in
    let fa = to_fn ca in
    fold_if [ ca ] (fun rt ->
        match fa rt with
        | Value.Null -> Value.Null
        | Value.Str s -> Value.Bool (Eval.like_match pattern s)
        | v -> efail "LIKE applied to non-string %s" (Value.to_string v))

and binop ctx op a b =
  let ca = compile ctx a in
  let cb = compile ctx b in
  let fa = to_fn ca and fb = to_fn cb in
  (* The interpreter applies [op (eval a) (eval b)], and OCaml evaluates the
     second argument first — so when both operands fail, the right one's
     error wins.  Keep that order. *)
  fold_if [ ca; cb ] (fun rt ->
      let vb = fb rt in
      let va = fa rt in
      op va vb)

and unop ctx op a =
  let ca = compile ctx a in
  let fa = to_fn ca in
  fold_if [ ca ] (fun rt -> op (fa rt))

(* ---------- group-context compilation (mirrors Executor.eval_agg) ------ *)

(* A group at runtime: its member rows and the representative row backing
   non-aggregate leaves ([None] for the empty global-aggregate group). *)
type grt = { members : rt list; rep : rt option }

let apply_binop = function
  | Ast.And -> Eval.and3
  | Ast.Or -> Eval.or3
  | (Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op -> Eval.compare_op op
  | Ast.Add -> Value.add
  | Ast.Sub -> Value.sub
  | Ast.Mul -> Value.mul
  | Ast.Div -> div_vals

let aggregate farg kind members =
  let values =
    match farg with
    | None -> List.map (fun _ -> Value.Int 1) members
    | Some f -> List.map (fun rt -> f rt) members
  in
  let present = List.filter (fun v -> not (Value.is_null v)) values in
  match kind with
  | Ast.Count ->
    Value.Int (match farg with None -> List.length members | Some _ -> List.length present)
  | Ast.Sum -> (
    match present with
    | [] -> Value.Null
    | first :: rest -> List.fold_left Value.add first rest)
  | Ast.Min -> (
    match present with
    | [] -> Value.Null
    | first :: rest ->
      List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) first rest)
  | Ast.Max -> (
    match present with
    | [] -> Value.Null
    | first :: rest ->
      List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) first rest)
  | Ast.Avg -> (
    match present with
    | [] -> Value.Null
    | vs ->
      let total = List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs in
      Value.Float (total /. float_of_int (List.length vs)))

let rec gcompile ctx (e : Ast.expr) : grt -> Value.t =
  match e with
  | Ast.Agg (kind, arg) ->
    let farg = Option.map (fun e -> to_fn (compile ctx e)) arg in
    fun g -> aggregate farg kind g.members
  | Ast.Lit v -> fun _ -> v
  | Ast.Col (q, name) -> (
    let f = to_fn (compile ctx e) in
    fun g ->
      match g.rep with Some rt -> f rt | None -> Eval.no_columns q name)
  | Ast.Param p -> (
    let f = to_fn (compile ctx e) in
    fun g ->
      match g.rep with
      | Some rt -> f rt
      (* The interpreter's empty-group representative environment carries no
         parameter bindings at all, so the reference fails even when the
         caller supplied the parameter. *)
      | None -> efail "unbound parameter :%s" p)
  | Ast.Binop (op, a, b) ->
    let ga = gcompile ctx a and gb = gcompile ctx b in
    let apply = apply_binop op in
    fun g ->
      let va = ga g in
      let vb = gb g in
      apply va vb
  | Ast.Unop (Ast.Not, a) ->
    let ga = gcompile ctx a in
    fun g -> Eval.not3 (ga g)
  | Ast.Unop (Ast.Neg, a) ->
    let ga = gcompile ctx a in
    fun g -> Value.neg (ga g)
  | Ast.Case (arms, default) ->
    let garms = List.map (fun (c, v) -> (gcompile ctx c, gcompile ctx v)) arms in
    let gdef = Option.map (gcompile ctx) default in
    fun g ->
      let rec arm = function
        | [] -> ( match gdef with Some d -> d g | None -> Value.Null)
        | (gc, gv) :: rest -> if Eval.truthy (gc g) then gv g else arm rest
      in
      arm garms
  | Ast.Is_null a ->
    let ga = gcompile ctx a in
    fun g -> Value.Bool (Value.is_null (ga g))
  | Ast.Is_not_null a ->
    let ga = gcompile ctx a in
    fun g -> Value.Bool (not (Value.is_null (ga g)))
  | Ast.In (a, cands) ->
    let ga = gcompile ctx a in
    let gcands = List.map (gcompile ctx) cands in
    (* eval_agg lowers every operand to a literal before dispatching, so
       candidates are evaluated eagerly here, unlike the row context. *)
    fun g ->
      let values = List.map (fun gc -> gc g) gcands in
      let subject = ga g in
      if Value.is_null subject then Value.Null
      else
        let rec scan saw_null = function
          | [] -> if saw_null then Value.Null else Value.Bool false
          | v :: rest ->
            if Value.is_null v then scan true rest
            else if Value.compare subject v = 0 then Value.Bool true
            else scan saw_null rest
        in
        scan false values
  | Ast.Between (a, lo, hi) ->
    let ga = gcompile ctx a and glo = gcompile ctx lo and ghi = gcompile ctx hi in
    fun g ->
      let v = ga g in
      let vlo = glo g in
      let vhi = ghi g in
      Eval.and3 (Eval.compare_op Ast.Ge v vlo) (Eval.compare_op Ast.Le v vhi)
  | Ast.Like (a, pattern) -> (
    let ga = gcompile ctx a in
    fun g ->
      match ga g with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Bool (Eval.like_match pattern s)
      | v -> efail "LIKE applied to non-string %s" (Value.to_string v))

(* ---------- access paths ---------- *)

type access =
  | Full_scan
  | Unique_probe of (rt -> Value.t) list
  | Index_scan of string * (rt -> Value.t) list

let rec conjuncts = function
  | Ast.Binop (Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Top-level [col = expr] conjuncts binding attributes of the table labeled
   [label].  Probe values are compiled with no column bindings, so an
   expression the interpreter's [const_eval] would reject raises
   {!Eval.Eval_error} when probed and the access path degrades to a scan. *)
let equality_bindings ctx ~label where =
  match where with
  | None -> []
  | Some w ->
    let rhs_ctx = { ctx with bindings = [] } in
    List.filter_map
      (fun c ->
        let pair =
          match c with
          | Ast.Binop (Ast.Eq, Ast.Col (q, name), e) -> Some (q, name, e)
          | Ast.Binop (Ast.Eq, e, Ast.Col (q, name)) -> Some (q, name, e)
          | _ -> None
        in
        match pair with
        | Some (q, name, e) when q = None || q = Some label ->
          Some (name, to_fn (compile rhs_ctx e))
        | Some _ | None -> None)
      (conjuncts w)

(* Same preference order as the interpreter: whole unique key bound, then
   the longest covered secondary index, then a scan.  Decided once at
   prepare time; the residual WHERE makes the choice cost-only. *)
let choose_access table bound =
  let schema = Table.schema table in
  let key_attrs =
    List.map (fun i -> (Schema.attribute schema i).Schema.name) (Schema.key_indices schema)
  in
  let value_of attr = List.assoc_opt attr bound in
  let all_key_values = List.map value_of key_attrs in
  if Table.has_key table && key_attrs <> [] && List.for_all Option.is_some all_key_values
  then Unique_probe (List.map Option.get all_key_values)
  else
    match Table.index_covering table (List.map fst bound) with
    | Some name ->
      let attrs = Table.index_attrs table name in
      Index_scan (name, List.map (fun a -> Option.get (value_of a)) attrs)
    | None -> Full_scan

let describe_access table = function
  | Full_scan -> Printf.sprintf "%s: full scan" (Table.name table)
  | Unique_probe _ -> Printf.sprintf "%s: unique-key probe" (Table.name table)
  | Index_scan (name, _) ->
    Printf.sprintf "%s: index scan via %s" (Table.name table) name

(* ---------- select-level compilation ---------- *)

let item_label i = function
  | Ast.Star -> fail "SELECT * cannot be labeled"
  | Ast.Item (_, Some alias) -> alias
  | Ast.Item (Ast.Col (_, name), None) -> name
  | Ast.Item (Ast.Agg (kind, _), None) ->
    String.lowercase_ascii
      (match kind with
      | Ast.Sum -> "sum"
      | Ast.Count -> "count"
      | Ast.Min -> "min"
      | Ast.Max -> "max"
      | Ast.Avg -> "avg")
  | Ast.Item (_, None) -> Printf.sprintf "col%d" i

let expand_items bindings items =
  List.concat_map
    (fun item ->
      match item with
      | Ast.Star ->
        List.concat_map
          (fun b ->
            List.map
              (fun a -> Ast.Item (Ast.Col (Some b.label, a.Schema.name), Some a.Schema.name))
              (Schema.attributes b.schema))
          bindings
      | Ast.Item _ -> [ item ])
    items

let is_grouped (s : Ast.select) =
  s.Ast.group_by <> []
  || List.exists
       (function Ast.Star -> false | Ast.Item (e, _) -> Ast.has_aggregate e)
       s.Ast.items
  || match s.Ast.having with Some e -> Ast.has_aggregate e | None -> false

type proj =
  | Flat of {
      out : (rt -> Value.t) list;
      order : (rt -> Value.t) list;
    }
  | Grouped of {
      keys : (rt -> Value.t) list;
      global : bool;  (** No GROUP BY: an empty input still yields one row. *)
      having : (grt -> Value.t) option;
      out : (grt -> Value.t) list;
      order : (grt -> Value.t) list;
    }

type dep = { dep_name : string; dep_table : Table.t; dep_version : int }

type t = {
  sources : (Table.t * access) list;  (** Empty for view plans. *)
  is_view : bool;
  where_fn : (rt -> Value.t) option;
  proj : proj;
  dirs : Ast.order_dir list;
  distinct : bool;
  limit : (int * int) option;
  plan_columns : string list;
  nparams : int;
  param_slots : (string, int) Hashtbl.t;
  deps : dep list;
  explain_lines : string list;
}

let compile_select ctx ~columns_override (s : Ast.select) =
  let items = expand_items ctx.bindings s.Ast.items in
  let columns = List.mapi item_label items in
  let columns = match columns_override with Some c -> c | None -> columns in
  let exprs =
    List.map (function Ast.Item (e, _) -> e | Ast.Star -> assert false) items
  in
  let where_fn = Option.map (fun w -> to_fn (compile ctx w)) s.Ast.where in
  let dirs = List.map snd s.Ast.order_by in
  let proj =
    if is_grouped s then
      Grouped
        {
          keys = List.map (fun e -> to_fn (compile ctx e)) s.Ast.group_by;
          global = s.Ast.group_by = [];
          having = Option.map (gcompile ctx) s.Ast.having;
          out = List.map (gcompile ctx) exprs;
          order = List.map (fun (e, _) -> gcompile ctx e) s.Ast.order_by;
        }
    else
      (* The interpreter ignores HAVING on non-grouped queries; so do we. *)
      Flat
        {
          out = List.map (fun e -> to_fn (compile ctx e)) exprs;
          order = List.map (fun (e, _) -> to_fn (compile ctx e)) s.Ast.order_by;
        }
  in
  (columns, where_fn, proj, dirs)

let prepare ?resolve db (s : Ast.select) =
  (* [resolve] overrides name resolution for names it knows — a catalog
     generation's registry, so a pinned session compiles against its own
     generation's physical tables even while a newer one is being staged
     under the same logical names.  Unknown names still fall through to the
     database catalog. *)
  let lookup name =
    match resolve with
    | Some f -> ( match f name with Some t -> Some t | None -> Database.table db name)
    | None -> Database.table db name
  in
  let offset = ref 0 in
  let pairs =
    List.map
      (fun (table_name, alias) ->
        let table =
          match lookup table_name with
          | Some t -> t
          | None -> fail "no such table %S" table_name
        in
        let binding =
          {
            label = (match alias with Some a -> a | None -> table_name);
            schema = Table.schema table;
            source = !offset;
          }
        in
        incr offset;
        (table, binding))
      s.Ast.from
  in
  (match pairs with [] -> fail "empty FROM clause" | _ -> ());
  let bindings = List.map snd pairs in
  let pctx = { slots = Hashtbl.create 8 } in
  let ctx = { bindings; pctx } in
  let sources =
    List.map
      (fun (table, binding) ->
        let bound = equality_bindings ctx ~label:binding.label s.Ast.where in
        (table, choose_access table bound))
      pairs
  in
  let columns, where_fn, proj, dirs = compile_select ctx ~columns_override:None s in
  {
    sources;
    is_view = false;
    where_fn;
    proj;
    dirs;
    distinct = s.Ast.distinct;
    limit = s.Ast.limit;
    plan_columns = columns;
    nparams = Hashtbl.length pctx.slots;
    param_slots = pctx.slots;
    deps =
      List.map
        (fun (table, _) ->
          { dep_name = Table.name table; dep_table = table; dep_version = Table.version table })
        pairs;
    explain_lines = List.map (fun (t, a) -> describe_access t a) sources;
  }

let prepare_view ~label ?columns schema (s : Ast.select) =
  let bindings = [ { label; schema; source = 0 } ] in
  let pctx = { slots = Hashtbl.create 8 } in
  let ctx = { bindings; pctx } in
  let cols, where_fn, proj, dirs = compile_select ctx ~columns_override:columns s in
  {
    sources = [];
    is_view = true;
    where_fn;
    proj;
    dirs;
    distinct = s.Ast.distinct;
    limit = s.Ast.limit;
    plan_columns = cols;
    nparams = Hashtbl.length pctx.slots;
    param_slots = pctx.slots;
    deps = [];
    explain_lines = [ label ^ ": view extract" ];
  }

let columns t = t.plan_columns

let explain t = String.concat "\n" t.explain_lines

let full_scan_only t =
  List.for_all (fun (_, a) -> match a with Full_scan -> true | _ -> false) t.sources

(* A plan stays valid while every table it touches is still the same
   physical table (dropping and recreating a name invalidates) and has seen
   no index DDL since prepare time. *)
let valid ?resolve db t =
  let lookup name =
    match resolve with
    | Some f -> ( match f name with Some tbl -> Some tbl | None -> Database.table db name)
    | None -> Database.table db name
  in
  List.for_all
    (fun d ->
      match lookup d.dep_name with
      | Some tbl -> tbl == d.dep_table && Table.version tbl = d.dep_version
      | None -> false)
    t.deps

(* ---------- execution ---------- *)

let compare_value_lists a b =
  let rec loop xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c <> 0 then c else loop xs ys
  in
  loop a b

(* Grouping hashes each row's key once instead of walking a balanced tree
   twice.  Equality must coincide with [compare_value_lists], which coerces
   Int/Float — so numeric values hash through their float image. *)
let value_hash = function
  | Value.Null -> 17
  | Value.Int n -> Hashtbl.hash (float_of_int n)
  | Value.Float f -> Hashtbl.hash f
  | Value.Str s -> Hashtbl.hash s
  | Value.Date d -> Hashtbl.hash (d + 7919)
  | Value.Bool b -> if b then 3 else 5

module Grouptbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = compare_value_lists a b = 0

  let hash key = List.fold_left (fun acc v -> (acc * 31) + value_hash v) 0 key
end)

let dedupe rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun row ->
      let key = List.map Value.to_string row in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    rows

(* First binding wins, mirroring the interpreter's [List.assoc_opt]. *)
let bind_params t params =
  let arr = Array.make t.nparams None in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt t.param_slots name with
      | Some i -> if Option.is_none arr.(i) then arr.(i) <- Some v
      | None -> ())
    params;
  arr

let rows_via_access table access prt =
  let scan_all () =
    let acc = ref [] in
    Table.scan table (fun _ tuple -> acc := tuple :: !acc);
    List.rev !acc
  in
  (* A probe value that fails to evaluate (unbound parameter, type error)
     is a binding the interpreter would never have formed; degrade to the
     scan it would have used.  Results are unaffected either way because
     the full WHERE runs as a residual filter. *)
  let probe fns =
    match List.map (fun f -> f prt) fns with
    | vs -> Some vs
    | exception Eval.Eval_error _ -> None
  in
  match access with
  | Full_scan -> scan_all ()
  | Unique_probe fns -> (
    match probe fns with
    | None -> scan_all ()
    | Some key -> (
      match Table.find_by_key table key with Some (_, t) -> [ t ] | None -> []))
  | Index_scan (name, fns) -> (
    match probe fns with
    | None -> scan_all ()
    | Some values ->
      List.filter_map (fun rid -> Table.get table rid) (Table.index_lookup table ~name values))

let source_rts t params =
  let prt = { tuples = [||]; params } in
  let rows = ref [] in
  let rec product acc = function
    | [] ->
      let rt = { tuples = Array.of_list (List.rev acc); params } in
      let keep = match t.where_fn with None -> true | Some f -> Eval.truthy (f rt) in
      if keep then rows := rt :: !rows
    | (table, access) :: rest ->
      List.iter
        (fun tuple -> product (tuple :: acc) rest)
        (rows_via_access table access prt)
  in
  product [] t.sources;
  List.rev !rows

let finish t rts =
  let projected =
    match t.proj with
    | Grouped { keys; global; having; out; order } ->
      let groups = Grouptbl.create 32 and order_keys = ref [] in
      List.iter
        (fun rt ->
          let key = List.map (fun f -> f rt) keys in
          match Grouptbl.find_opt groups key with
          | None ->
            Grouptbl.add groups key (ref [ rt ]);
            order_keys := key :: !order_keys
          | Some members -> members := rt :: !members)
        rts;
      let group_lists =
        List.map (fun key -> List.rev !(Grouptbl.find groups key)) (List.rev !order_keys)
      in
      let group_lists = if group_lists = [] && global then [ [] ] else group_lists in
      List.filter_map
        (fun members ->
          let g = { members; rep = (match members with r :: _ -> Some r | [] -> None) } in
          let survives = match having with None -> true | Some h -> Eval.truthy (h g) in
          if survives then begin
            let row = List.map (fun f -> f g) out in
            let sort_key = List.map (fun f -> f g) order in
            Some (row, sort_key)
          end
          else None)
        group_lists
    | Flat { out; order } ->
      List.map
        (fun rt ->
          let row = List.map (fun f -> f rt) out in
          let sort_key = List.map (fun f -> f rt) order in
          (row, sort_key))
        rts
  in
  let sorted =
    match t.dirs with
    | [] -> List.map fst projected
    | dirs ->
      let cmp (_, ka) (_, kb) =
        let rec loop ks1 ks2 ds =
          match (ks1, ks2, ds) with
          | [], [], _ -> 0
          | k1 :: r1, k2 :: r2, d :: rd ->
            let c = Value.compare k1 k2 in
            let c = match d with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else loop r1 r2 rd
          | _ -> 0
        in
        loop ka kb dirs
      in
      List.map fst (List.stable_sort cmp projected)
  in
  let deduped = if t.distinct then dedupe sorted else sorted in
  let final =
    match t.limit with
    | None -> deduped
    | Some (n, m) -> List.filteri (fun i _ -> i >= m && i < m + n) deduped
  in
  { columns = t.plan_columns; rows = final }

let execute ?(params = []) t =
  if t.is_view then invalid_arg "Plan.execute: view plan; use execute_view";
  let params = bind_params t params in
  finish t (source_rts t params)

let execute_view ?(params = []) t tuples =
  if not t.is_view then invalid_arg "Plan.execute_view: not a view plan";
  let params = bind_params t params in
  let rts =
    match t.where_fn with
    | None -> List.map (fun tuple -> { tuples = [| tuple |]; params }) tuples
    | Some f ->
      List.filter_map
        (fun tuple ->
          let rt = { tuples = [| tuple |]; params } in
          if Eval.truthy (f rt) then Some rt else None)
        tuples
  in
  finish t rts

(* ---------- result helpers ---------- *)

let sort_rows r = { r with rows = List.sort compare_value_lists r.rows }

let result_equal a b =
  List.equal String.equal a.columns b.columns
  && List.equal
       (fun x y -> compare_value_lists x y = 0)
       (sort_rows a).rows (sort_rows b).rows
