module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Heap_file = Vnl_storage.Heap_file
module Bptree = Vnl_index.Bptree

exception Unique_violation of string

(* Secondary indexes are non-unique: entries are keyed by the indexed
   attribute values with the rid appended as a uniquifier, so equal
   attribute values coexist and lookups are prefix range scans. *)
type secondary = { attrs : string list; positions : int list; tree : unit Bptree.t }

type t = {
  mutable name : string;
  heap : Heap_file.t;
  index : Heap_file.rid Bptree.t option;  (** Present iff the schema has a unique key. *)
  secondaries : (string, secondary) Hashtbl.t;  (** O(1) resolution by name. *)
  mutable sec_order : string list;  (** Creation order, oldest first. *)
  mutable version : int;  (** Bumped on index DDL; keys plan-cache validity. *)
}

let create pool ~name schema =
  let heap = Heap_file.create pool schema in
  let index = if Schema.has_unique_key schema then Some (Bptree.create ()) else None in
  { name; heap; index; secondaries = Hashtbl.create 4; sec_order = []; version = 0 }

let attach_heap pool ~name heap secondary =
  let schema = Vnl_storage.Heap_file.schema heap in
  ignore pool;
  let index =
    if Schema.has_unique_key schema then begin
      let tree = Bptree.create () in
      Heap_file.scan heap (fun rid tuple -> Bptree.insert tree (Tuple.key_of schema tuple) rid);
      Some tree
    end
    else None
  in
  let t = { name; heap; index; secondaries = Hashtbl.create 4; sec_order = []; version = 0 } in
  t, secondary

let name t = t.name

(* For Database.rename_table only: the catalog hashtable key and this field
   must change together. *)
let set_name t name = t.name <- name

let schema t = Heap_file.schema t.heap

let heap t = t.heap

let has_key t = t.index <> None

let version t = t.version

let key_of t tuple = Tuple.key_of (schema t) tuple

let sec_entry_key sec tuple (rid : Heap_file.rid) =
  Tuple.project tuple sec.positions
  @ [ Vnl_relation.Value.Int rid.Heap_file.page; Vnl_relation.Value.Int rid.Heap_file.slot ]

let iter_secondaries t f =
  List.iter (fun iname -> f (Hashtbl.find t.secondaries iname)) t.sec_order

let sec_insert t tuple rid =
  iter_secondaries t (fun sec -> Bptree.insert sec.tree (sec_entry_key sec tuple rid) ())

let sec_remove t tuple rid =
  iter_secondaries t (fun sec -> ignore (Bptree.remove sec.tree (sec_entry_key sec tuple rid)))

let insert ?(check = true) t tuple =
  (* [~check:false] skips the duplicate-key probe for callers that already
     resolved the key against the index this transaction (the maintenance
     appliers and the batch pipeline); everyone else keeps the check. *)
  (match t.index with
  | Some index when check && Bptree.mem index (key_of t tuple) ->
    raise (Unique_violation (Printf.sprintf "table %s: duplicate key" t.name))
  | Some _ | None -> ());
  let rid = Heap_file.insert t.heap tuple in
  Option.iter (fun index -> Bptree.insert index (key_of t tuple) rid) t.index;
  sec_insert t tuple rid;
  rid

let insert_many ?(check = true) t tuples =
  match t.index with
  | None -> List.map (fun tuple -> insert ~check:false t tuple) tuples
  | Some index ->
    (* Heap inserts happen in list order (so rid assignment matches per-
       tuple insertion); the index entries then go in as one sorted batch
       ({!Bptree.insert_batch}), sharing the descent per-key inserts would
       repeat. *)
    let pairs =
      List.map
        (fun tuple ->
          let key = key_of t tuple in
          if check && Bptree.mem index key then
            raise (Unique_violation (Printf.sprintf "table %s: duplicate key" t.name));
          let rid = Heap_file.insert t.heap tuple in
          sec_insert t tuple rid;
          (key, rid))
        tuples
    in
    let arr = Array.of_list pairs in
    Array.sort (fun (a, _) (b, _) -> Bptree.compare_keys a b) arr;
    Bptree.insert_batch index arr;
    List.map snd pairs

let update_in_place ?old t rid tuple =
  (* [old], when the caller already holds the stored tuple, skips the
     re-fetch and decode; it must be exactly what [get t rid] would
     return, or index maintenance goes wrong. *)
  let old = match old with Some _ as o -> o | None -> Heap_file.get t.heap rid in
  (match (t.index, old) with
  | Some index, Some old ->
    let old_key = key_of t old and new_key = key_of t tuple in
    if not (List.for_all2 Vnl_relation.Value.equal old_key new_key) then begin
      if Bptree.mem index new_key then
        raise (Unique_violation (Printf.sprintf "table %s: duplicate key" t.name));
      ignore (Bptree.remove index old_key);
      Bptree.insert index new_key rid
    end
  | (Some _ | None), _ -> ());
  (match old with
  | Some old ->
    (* Per-index change test: an update that leaves an index's attributes
       untouched leaves that tree alone entirely.  Beyond saving two tree
       operations per update, this is what the pipelined maintenance path
       leans on — an update whose assignments avoid every indexed
       attribute has an empty index footprint and may run on a worker
       domain while another partition owns the trees. *)
    iter_secondaries t (fun sec ->
        let old_key = sec_entry_key sec old rid in
        let new_key = sec_entry_key sec tuple rid in
        if not (List.for_all2 Vnl_relation.Value.equal old_key new_key) then begin
          ignore (Bptree.remove sec.tree old_key);
          Bptree.insert sec.tree new_key ()
        end)
  | None -> ());
  Heap_file.update_in_place t.heap rid tuple

let delete t rid =
  (match Heap_file.get t.heap rid with
  | Some old ->
    (match t.index with
    | Some index -> ignore (Bptree.remove index (key_of t old))
    | None -> ());
    sec_remove t old rid
  | None -> ());
  Heap_file.delete t.heap rid

let get t rid = Heap_file.get t.heap rid

let find_by_key t key =
  match t.index with
  | None -> None
  | Some index -> (
    match Bptree.find index key with
    | None -> None
    | Some rid -> (
      match Heap_file.get t.heap rid with
      | Some tuple -> Some (rid, tuple)
      | None -> None))

let find_many_by_key t keys =
  let m = Array.length keys in
  match t.index with
  | None -> Array.make m None
  | Some index ->
    (* Sort a permutation, resolve rids in one tree pass, then fetch the
       records in ascending (page, slot) order so a small buffer pool sees
       each page once. *)
    let order = Array.init m Fun.id in
    Array.sort (fun i j -> Bptree.compare_keys keys.(i) keys.(j)) order;
    let sorted = Array.map (fun i -> keys.(i)) order in
    let rids = Bptree.find_batch index sorted in
    let out = Array.make m None in
    let hits = ref [] in
    Array.iteri
      (fun si oi -> match rids.(si) with Some rid -> hits := (rid, oi) :: !hits | None -> ())
      order;
    let hits =
      List.sort
        (fun ((a : Heap_file.rid), _) ((b : Heap_file.rid), _) ->
          let c = Int.compare a.page b.page in
          if c <> 0 then c else Int.compare a.slot b.slot)
        !hits
    in
    List.iter
      (fun (rid, oi) ->
        match Heap_file.get t.heap rid with
        | Some tuple -> out.(oi) <- Some (rid, tuple)
        | None -> ())
      hits;
    out

let scan t f = Heap_file.scan t.heap f

let iter_tuples t f = Heap_file.iter_tuples t.heap f

let iter_records t f = Heap_file.iter_records t.heap f

let fold_records t ~init ~f = Heap_file.fold_records t.heap ~init ~f

let fold_raw t ~init ~f = Heap_file.fold_raw t.heap ~init ~f

let to_list t = Heap_file.to_list t.heap

let tuple_count t = Heap_file.tuple_count t.heap

let page_count t = Heap_file.page_count t.heap

let truncate t =
  let rids = List.map fst (to_list t) in
  List.iter (fun rid -> delete t rid) rids


let create_index t ~name attrs =
  if attrs = [] then invalid_arg "Table.create_index: empty attribute list";
  Catalog.check_name ~what:"index" name;
  if Hashtbl.mem t.secondaries name then
    invalid_arg (Printf.sprintf "Table.create_index: %S already exists" name);
  let s = schema t in
  let positions =
    List.map
      (fun attr ->
        match Schema.index_of_opt s attr with
        | Some i -> i
        | None -> invalid_arg (Printf.sprintf "Table.create_index: unknown attribute %S" attr))
      attrs
  in
  let sec = { attrs; positions; tree = Bptree.create () } in
  Heap_file.scan t.heap (fun rid tuple -> Bptree.insert sec.tree (sec_entry_key sec tuple rid) ());
  Hashtbl.replace t.secondaries name sec;
  t.sec_order <- t.sec_order @ [ name ];
  t.version <- t.version + 1

let drop_index t name =
  if Hashtbl.mem t.secondaries name then begin
    Hashtbl.remove t.secondaries name;
    t.sec_order <- List.filter (fun n -> not (String.equal n name)) t.sec_order;
    t.version <- t.version + 1
  end

let indexes t =
  List.map (fun name -> (name, (Hashtbl.find t.secondaries name).attrs)) t.sec_order

let index_attrs t name =
  match Hashtbl.find_opt t.secondaries name with
  | Some sec -> sec.attrs
  | None -> raise Not_found

let index_lookup t ~name values =
  let sec =
    match Hashtbl.find_opt t.secondaries name with
    | Some sec -> sec
    | None -> raise Not_found
  in
  if List.length values <> List.length sec.positions then
    invalid_arg "Table.index_lookup: arity mismatch";
  let lo = values @ [ Vnl_relation.Value.Int min_int; Vnl_relation.Value.Int min_int ] in
  let hi = values @ [ Vnl_relation.Value.Int max_int; Vnl_relation.Value.Int max_int ] in
  let acc = ref [] in
  Bptree.range sec.tree ~lo ~hi (fun key () ->
      match List.rev key with
      | Vnl_relation.Value.Int slot :: Vnl_relation.Value.Int page :: _ ->
        acc := { Heap_file.page; slot } :: !acc
      | _ -> ());
  List.rev !acc

let index_covering t bound_attrs =
  let covered sec = List.for_all (fun a -> List.mem a bound_attrs) sec.attrs in
  (* Prefer the most selective (longest attribute list) covered index. *)
  List.fold_left
    (fun best name ->
      let sec = Hashtbl.find t.secondaries name in
      if covered sec then
        match best with
        | Some (_, n) when n >= List.length sec.attrs -> best
        | _ -> Some (name, List.length sec.attrs)
      else best)
    None t.sec_order
  |> Option.map fst


let attach pool ~name schema ~pages ~secondary =
  let heap = Heap_file.attach pool schema ~pages in
  let t, secondary = attach_heap pool ~name heap secondary in
  List.iter (fun (iname, attrs) -> create_index t ~name:iname attrs) secondary;
  t
