type t = Value.t array

let check schema values =
  if Array.length values <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Tuple.make: arity mismatch (got %d, schema has %d)"
         (Array.length values) (Schema.arity schema));
  Array.iteri
    (fun i v ->
      let a = Schema.attribute schema i in
      if not (Value.matches a.Schema.dtype v) then
        invalid_arg
          (Printf.sprintf "Tuple.make: value %s does not match attribute %s : %s"
             (Value.to_string v) a.Schema.name
             (Dtype.to_string a.Schema.dtype)))
    values

let of_array schema values =
  let arr = Array.copy values in
  check schema arr;
  arr

let make schema values = of_array schema (Array.of_list values)

let unsafe_of_array values = values

let unsafe_init n f = Array.init n f

let arity = Array.length

let get t i = t.(i)

let get_by_name schema t name = t.(Schema.index_of schema name)

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let set_many t updates =
  let t' = Array.copy t in
  List.iter (fun (i, v) -> t'.(i) <- v) updates;
  t'

let unsafe_set_many_in_place t updates = List.iter (fun (i, v) -> t.(i) <- v) updates

let unsafe_set_in_place t i v = t.(i) <- v

let values = Array.to_list

let project t positions = List.map (fun i -> t.(i)) positions

let key_of schema t = project t (Schema.key_indices schema)

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let rec loop i =
    if i >= Array.length a && i >= Array.length b then 0
    else if i >= Array.length a then -1
    else if i >= Array.length b then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let encode schema t =
  let buf = Bytes.create (Schema.width schema) in
  let off = ref 0 in
  Array.iteri
    (fun i v ->
      let dt = (Schema.attribute schema i).Schema.dtype in
      let cell = Value.encode dt v in
      Bytes.blit cell 0 buf !off (Bytes.length cell);
      off := !off + Dtype.width dt)
    t;
  buf

let decode_from schema buf start =
  let dts = Schema.dtypes schema and offs = Schema.cell_offsets schema in
  let n = Array.length dts in
  let arr = Array.make n Value.Null in
  for i = 0 to n - 1 do
    Array.unsafe_set arr i
      (Value.decode (Array.unsafe_get dts i) buf (start + Array.unsafe_get offs i))
  done;
  arr

let decode schema buf = decode_from schema buf 0

let pp schema ppf t =
  ignore schema;
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (values t)

let to_strings t = List.map Value.to_string (values t)
