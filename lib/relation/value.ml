type t = Int of int | Float of float | Str of string | Date of int | Bool of bool | Null

let is_null = function Null -> true | Int _ | Float _ | Str _ | Date _ | Bool _ -> false

let matches dt v =
  match (dt, v) with
  | _, Null -> true
  | Dtype.Int, Int _ -> true
  | Dtype.Float, Float _ -> true
  | Dtype.Str n, Str s -> String.length s <= n
  | Dtype.Date, Date _ -> true
  | Dtype.Bool, Bool _ -> true
  | (Dtype.Int | Dtype.Float | Dtype.Str _ | Dtype.Date | Dtype.Bool), _ -> false

let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Date _ -> 4
  | Str _ -> 5

(* Specialized comparisons (not [Stdlib.compare]): the B+-tree and the
   batched key sorts sit on this, and the generic compare is several times
   slower than the primitive ones. *)
let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let arith f_int f_float a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (f_int x y)
  | Float x, Float y -> Float (f_float x y)
  | Int x, Float y -> Float (f_float (float_of_int x) y)
  | Float x, Int y -> Float (f_float x (float_of_int y))
  | _ -> invalid_arg "Value: arithmetic on non-numeric value"

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )
let div = arith ( / ) ( /. )

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | _ -> invalid_arg "Value.neg: non-numeric value"

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Null -> 0.0
  | Str _ | Date _ | Bool _ -> invalid_arg "Value.to_float: non-numeric value"

let date_of_mdy m d y =
  let y = if y < 100 then 1900 + y else y in
  Date ((y * 10000) + (m * 100) + d)

let grouped_int_string n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [to_string] sits on query hot paths (group keys, DISTINCT), so it must
   not go through the Format machinery. *)
let to_string = function
  | Int n -> grouped_int_string n
  | Float f -> Printf.sprintf "%.2f" f
  | Str s -> s
  | Date d ->
    let y = d / 10000 and m = d / 100 mod 100 and day = d mod 100 in
    Printf.sprintf "%02d/%02d/%02d" m day (y mod 100)
  | Bool b -> if b then "true" else "false"
  | Null -> "null"

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* Null sentinels per type: chosen outside the range workloads generate. *)
let int_null = Int32.min_int
let date_null = Int32.min_int

let set_i32 buf off v =
  Bytes.set_int32_le buf off v

let encode dt v =
  if not (matches dt v) then
    invalid_arg
      (Printf.sprintf "Value.encode: %s does not match %s" (to_string v) (Dtype.to_string dt));
  let w = Dtype.width dt in
  let buf = Bytes.make w '\000' in
  (match (dt, v) with
  | Dtype.Int, Int n -> set_i32 buf 0 (Int32.of_int n)
  | Dtype.Int, Null -> set_i32 buf 0 int_null
  | Dtype.Float, Float f -> Bytes.set_int64_le buf 0 (Int64.bits_of_float f)
  | Dtype.Float, Null -> Bytes.set_int64_le buf 0 (Int64.bits_of_float nan)
  | Dtype.Str _, Str s -> Bytes.blit_string s 0 buf 0 (String.length s)
  | Dtype.Str _, Null -> Bytes.fill buf 0 w '\xff'
  | Dtype.Date, Date d -> set_i32 buf 0 (Int32.of_int d)
  | Dtype.Date, Null -> set_i32 buf 0 date_null
  | Dtype.Bool, Bool b -> Bytes.set buf 0 (if b then '\001' else '\000')
  | Dtype.Bool, Null -> Bytes.set buf 0 '\002'
  | _ -> assert false);
  buf

let decode dt buf off =
  match dt with
  | Dtype.Int ->
    let n = Bytes.get_int32_le buf off in
    if Int32.equal n int_null then Null else Int (Int32.to_int n)
  | Dtype.Float ->
    let f = Int64.float_of_bits (Bytes.get_int64_le buf off) in
    if Float.is_nan f then Null else Float f
  | Dtype.Str n ->
    if off < 0 || off + n > Bytes.length buf then
      invalid_arg "Value.decode: string cell out of bounds"
    else if n > 0 && Bytes.unsafe_get buf off = '\xff' then Null
    else begin
      (* Find the padding terminator in place: one allocation, not two,
         and one bounds check for the whole cell rather than per byte. *)
      let lim = off + n in
      let rec stop i = if i >= lim || Bytes.unsafe_get buf i = '\000' then i else stop (i + 1) in
      Str (Bytes.sub_string buf off (stop off - off))
    end
  | Dtype.Date ->
    let n = Bytes.get_int32_le buf off in
    if Int32.equal n date_null then Null else Date (Int32.to_int n)
  | Dtype.Bool -> (
    match Bytes.get buf off with '\000' -> Bool false | '\001' -> Bool true | _ -> Null)

let hash = function
  | Null -> 17
  | Int n -> Hashtbl.hash n
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (d + 7919)
  | Bool b -> if b then 3 else 5
