(** Relation schemas.

    An attribute carries the two flags the 2VNL algorithm cares about:
    whether it is {e updatable} (can be changed by a maintenance update —
    for summary tables only the aggregate results are, §3.1) and whether it
    belongs to the relation's {e unique key} (the group-by attributes of a
    summary table, §3.3). *)

type attribute = {
  name : string;
  dtype : Dtype.t;
  updatable : bool;  (** May be modified by a maintenance update operation. *)
  key : bool;  (** Part of the unique key, if the relation has one. *)
}

type t
(** An ordered list of uniquely-named attributes. *)

val attr : ?updatable:bool -> ?key:bool -> string -> Dtype.t -> attribute
(** Attribute constructor; flags default to [false]. *)

val make : attribute list -> t
(** Build a schema.  Raises [Invalid_argument] on duplicate names, an empty
    attribute list, or an attribute that is both [key] and [updatable]
    (keys are never updated in place; the paper models key changes as
    delete + insert). *)

val extend_with : t -> attribute -> t
(** [extend_with t a] is [t] with [a] appended — the shape of an
    [ALTER TABLE ... ADD COLUMN].  Existing positions are unchanged, so
    plans and key extraction compiled against [t] stay positionally valid
    against the extension.  Raises [Invalid_argument] if [a] is a key
    attribute (that would retroactively change tuple identity) or
    duplicates an existing name. *)

val arity : t -> int

val attribute : t -> int -> attribute
(** [attribute t i] is the [i]-th attribute (0-based). *)

val dtypes : t -> Dtype.t array
(** Attribute dtypes in schema order.  The array is the schema's own cache
    — callers must not mutate it. *)

val cell_offsets : t -> int array
(** Byte offset of each attribute's cell within an encoded record (prefix
    sums of the dtype widths).  Same ownership caveat as {!dtypes}. *)

val attributes : t -> attribute list

val index_of_opt : t -> string -> int option
val index_of : t -> string -> int
(** Raises [Not_found] for unknown names. *)

val mem : t -> string -> bool

val names : t -> string list

val width : t -> int
(** Total physical tuple width in bytes (sum of attribute widths). *)

val key_indices : t -> int list
(** Positions of key attributes, in schema order; empty when the relation
    has no unique key. *)

val updatable_indices : t -> int list
(** Positions of updatable attributes, in schema order. *)

val has_unique_key : t -> bool

val pp : Format.formatter -> t -> unit
(** Render as [name : TYPE [key] [upd], ...]. *)

val equal : t -> t -> bool
