type attribute = { name : string; dtype : Dtype.t; updatable : bool; key : bool }

type t = {
  attrs : attribute array;
  positions : (string, int) Hashtbl.t;
  dtypes : Dtype.t array;  (** [attrs.(i).dtype], cached for decode loops. *)
  cell_offsets : int array;  (** Byte offset of each attribute's cell. *)
}

let attr ?(updatable = false) ?(key = false) name dtype = { name; dtype; updatable; key }

let make attrs =
  if attrs = [] then invalid_arg "Schema.make: empty attribute list";
  let arr = Array.of_list attrs in
  let positions = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem positions a.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" a.name);
      if a.key && a.updatable then
        invalid_arg (Printf.sprintf "Schema.make: key attribute %S cannot be updatable" a.name);
      Hashtbl.add positions a.name i)
    arr;
  let dtypes = Array.map (fun a -> a.dtype) arr in
  let cell_offsets = Array.make (Array.length arr) 0 in
  let off = ref 0 in
  Array.iteri
    (fun i dt ->
      cell_offsets.(i) <- !off;
      off := !off + Dtype.width dt)
    dtypes;
  { attrs = arr; positions; dtypes; cell_offsets }

let attributes t = Array.to_list t.attrs

(* Online schema evolution appends; key columns would change tuple identity
   retroactively, so only non-key attributes may ride an extension. *)
let extend_with t a =
  if a.key then
    invalid_arg (Printf.sprintf "Schema.extend_with: %S: cannot append a key attribute" a.name);
  make (attributes t @ [ a ])

let arity t = Array.length t.attrs

let attribute t i = t.attrs.(i)

let dtypes t = t.dtypes

let cell_offsets t = t.cell_offsets

let index_of_opt t name = Hashtbl.find_opt t.positions name

let index_of t name =
  match index_of_opt t name with Some i -> i | None -> raise Not_found

let mem t name = Hashtbl.mem t.positions name

let names t = Array.to_list (Array.map (fun a -> a.name) t.attrs)

let width t = Array.fold_left (fun acc a -> acc + Dtype.width a.dtype) 0 t.attrs

let indices_where pred t =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) (if pred t.attrs.(i) then i :: acc else acc)
  in
  loop (Array.length t.attrs - 1) []

let key_indices = indices_where (fun a -> a.key)

let updatable_indices = indices_where (fun a -> a.updatable)

let has_unique_key t = key_indices t <> []

let pp_attribute ppf a =
  Format.fprintf ppf "%s : %a%s%s" a.name Dtype.pp a.dtype
    (if a.key then " [key]" else "")
    (if a.updatable then " [upd]" else "")

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_attribute ppf (attributes t)

let equal a b =
  arity a = arity b
  && List.for_all2
       (fun x y ->
         String.equal x.name y.name && Dtype.equal x.dtype y.dtype
         && x.updatable = y.updatable && x.key = y.key)
       (attributes a) (attributes b)
