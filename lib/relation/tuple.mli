(** Tuples: schema-typed value vectors with fixed-width physical encoding.

    Physical encoding is what heap pages store; the in-place update
    requirement of §4 is satisfiable because encoded width depends only on
    the schema, never on the values. *)

type t
(** An immutable tuple.  Updates produce new tuples; the heap file overwrites
    the physical record in place. *)

val make : Schema.t -> Value.t list -> t
(** Build a tuple; raises [Invalid_argument] on arity or type mismatch. *)

val of_array : Schema.t -> Value.t array -> t
(** Like [make] from an array; the array is copied. *)

val unsafe_of_array : Value.t array -> t
(** Adopt the array without copying or type-checking.  For engine-internal
    hot paths whose values are already schema-typed (e.g. projections of a
    stored tuple); the caller must not retain the array. *)

val unsafe_init : int -> (int -> Value.t) -> t
(** Build a tuple positionally without type-checking; same contract as
    {!unsafe_of_array}. *)

val arity : t -> int

val get : t -> int -> Value.t

val get_by_name : Schema.t -> t -> string -> Value.t
(** Raises [Not_found] for unknown attribute names. *)

val set : t -> int -> Value.t -> t
(** Functional single-position update (no type re-check; callers are the
    typed layers above). *)

val set_many : t -> (int * Value.t) list -> t

val unsafe_set_many_in_place : t -> (int * Value.t) list -> unit
(** Write the positions directly, without copying.  Only for engine-internal
    hot paths where the caller holds the sole reference to the tuple (the
    batched maintenance fold); anywhere else it breaks the immutability
    contract above. *)

val unsafe_set_in_place : t -> int -> Value.t -> unit
(** Single-position variant of {!unsafe_set_many_in_place}; same contract. *)

val values : t -> Value.t list

val project : t -> int list -> Value.t list
(** Extract the values at the given positions, in the given order. *)

val key_of : Schema.t -> t -> Value.t list
(** The tuple's unique-key values (empty list when the schema has none). *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic by position using {!Value.compare}. *)

val encode : Schema.t -> t -> bytes
(** Fixed-width physical record of exactly [Schema.width] bytes. *)

val decode : Schema.t -> bytes -> t
(** Inverse of [encode]; reads from offset 0. *)

val decode_from : Schema.t -> bytes -> int -> t
(** [decode_from schema buf off] decodes a record that starts at [off],
    letting page scans decode straight out of the frame image without
    copying the record bytes first. *)

val pp : Schema.t -> Format.formatter -> t -> unit
(** Render as [(v1, v2, ...)] with paper-style value formatting. *)

val to_strings : t -> string list
(** One rendered cell per attribute, for table output. *)
