(* FAULTS: crash-recovery sweep and checksum overhead.

   The §7 claim under test: with the flag -> data -> catalog -> publish
   write ordering, maintenance needs no before-image log — every crash
   point leaves a disk image that restart-time recovery repairs to the
   pre- or post-transaction state.  The sweep arms the simulated disk to
   crash at the k-th physical write for every k the protocol performs
   (both before and after the write lands), reopens from the surviving
   image, and classifies the recovered state; torn variants apply a random
   prefix of the crashing write and must be caught by the page checksum.

   The second table prices the checksums themselves: raw disk write/read
   cost with CRC maintenance on vs off.  Results go to BENCH_recovery.json. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Disk = Vnl_storage.Disk
module Database = Vnl_query.Database
module Twovnl = Vnl_core.Twovnl
module Recovery = Vnl_core.Recovery
module Batch = Vnl_core.Batch
module Xorshift = Vnl_util.Xorshift
module Sales = Vnl_workload.Sales_gen
module T = Vnl_util.Ascii_table

let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let table_name = "DailySales"

let tables = [ (table_name, daily_sales) ]

let groups_per_day = Array.length Sales.cities * Array.length Sales.product_lines

let group_key gid ~day =
  let city, state = Sales.cities.(gid mod Array.length Sales.cities) in
  let pl = Sales.product_lines.(gid / Array.length Sales.cities) in
  [ Value.Str city; Value.Str state; Value.Str pl; Sales.date_of_day day ]

(* A cleanly shut-down warehouse: [days] days of history on disk. *)
let build_base ~pool_capacity ~days =
  let db = Database.create ~pool_capacity () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:table_name daily_sales);
  let rows = ref [] in
  for day = days - 1 downto 0 do
    for gid = groups_per_day - 1 downto 0 do
      rows := Tuple.make daily_sales (group_key gid ~day @ [ Value.Int 1000 ]) :: !rows
    done
  done;
  Twovnl.load_initial wh table_name !rows;
  Database.save db;
  Database.disk db

(* One refresh batch against the history: retirements, corrections, and
   fresh groups for day [days] — disjoint key roles, so net-effect folding
   never reorders across keys. *)
let gen_ops rng ~days ~size =
  let ops = ref [] in
  let add op = ops := op :: !ops in
  let fresh = Array.make groups_per_day false in
  (* Retired keys are out of play: an update or second delete of a key
     deleted earlier in the same batch has no legal net effect. *)
  let retired = Hashtbl.create 16 in
  let live_hist () =
    let rec draw tries =
      let gid = Xorshift.int rng groups_per_day and day = Xorshift.int rng days in
      if Hashtbl.mem retired (day, gid) && tries < 50 then draw (tries + 1)
      else if Hashtbl.mem retired (day, gid) then None
      else Some (day, gid)
    in
    draw 0
  in
  for _ = 1 to size do
    let r = Xorshift.float rng 1.0 in
    if r < 0.5 then begin
      let gid = Xorshift.int rng groups_per_day in
      let key = group_key gid ~day:days in
      if fresh.(gid) then add (Batch.Update (key, [ (4, Value.Int (Xorshift.int rng 9_000)) ]))
      else begin
        fresh.(gid) <- true;
        add (Batch.Insert (Tuple.make daily_sales (key @ [ Value.Int (Xorshift.int rng 9_000) ])))
      end
    end
    else
      match live_hist () with
      | None -> ()
      | Some (day, gid) ->
        if r < 0.9 then
          add (Batch.Update (group_key gid ~day, [ (4, Value.Int (Xorshift.int rng 50_000)) ]))
        else begin
          Hashtbl.add retired (day, gid) ();
          add (Batch.Delete (group_key gid ~day))
        end
  done;
  List.rev !ops

let visible vnl =
  let s = Twovnl.Session.begin_ vnl in
  let rows = Twovnl.Session.read_table vnl s table_name in
  Twovnl.Session.end_ vnl s;
  List.sort Tuple.compare rows

let reopen ~pool_capacity disk = Recovery.reopen ~pool_capacity disk ~tables

let run_refresh vnl ops =
  let db = Twovnl.database vnl in
  Recovery.run_maintenance db vnl (fun txn ->
      ignore (Twovnl.Txn.apply_batch txn ~table:table_name ops))

let same = List.equal Tuple.equal

type sweep_result = {
  writes : int;  (** Physical writes in the fault-free protocol run. *)
  crash_points : int;  (** Clean crash points exercised (2 per write). *)
  pre : int;
  post : int;
  torn_detected : int;
  torn_recovered : int;
  reopen_total_s : float;  (** Summed restart-time recovery cost. *)
  reopen_max_s : float;
}

let sweep ~pool_capacity ~days ~size ~seed =
  let base = build_base ~pool_capacity ~days in
  let rng = Xorshift.create seed in
  let ops = gen_ops rng ~days ~size in
  let pre, post, writes =
    let d = Disk.clone base in
    let vnl, _ = reopen ~pool_capacity d in
    let pre = visible vnl in
    Disk.reset_stats d;
    run_refresh vnl ops;
    ((pre, visible vnl, (Disk.stats d).Disk.writes) : Tuple.t list * Tuple.t list * int)
  in
  let n_pre = ref 0 and n_post = ref 0 in
  let torn_detected = ref 0 and torn_recovered = ref 0 in
  let reopen_total = ref 0.0 and reopen_max = ref 0.0 in
  let timed_reopen d =
    let t0 = Sys.time () in
    let r = reopen ~pool_capacity d in
    let dt = Sys.time () -. t0 in
    reopen_total := !reopen_total +. dt;
    if dt > !reopen_max then reopen_max := dt;
    r
  in
  let crash d prefix k =
    Disk.set_faults d { Disk.no_faults with crash_at_write = Some k; torn_prefix = prefix };
    (try
       run_refresh (fst (reopen ~pool_capacity d)) ops;
       failwith "crash point did not fire"
     with Disk.Crash _ -> ());
    Disk.clear_faults d
  in
  for k = 1 to writes do
    (* Before- and after-write clean crash points. *)
    List.iter
      (fun prefix ->
        let d = Disk.clone base in
        crash d prefix k;
        let vnl, _ = timed_reopen d in
        let state = visible vnl in
        if same state pre then incr n_pre
        else if same state post then incr n_post
        else failwith (Printf.sprintf "crash at write %d: recovered state is neither pre nor post" k))
      [ 0; Disk.page_size base ];
    (* Torn variant: random proper prefix of the crashing write lands. *)
    let d = Disk.clone base in
    crash d (1 + Xorshift.int rng (Disk.page_size base - 1)) k;
    match timed_reopen d with
    | exception Disk.Corrupt_page _ -> incr torn_detected
    | vnl, _ ->
      let state = visible vnl in
      if same state pre || same state post then incr torn_recovered
      else failwith (Printf.sprintf "torn write at %d silently decoded" k)
  done;
  {
    writes;
    crash_points = 2 * writes;
    pre = !n_pre;
    post = !n_post;
    torn_detected = !torn_detected;
    torn_recovered = !torn_recovered;
    reopen_total_s = !reopen_total;
    reopen_max_s = !reopen_max;
  }

(* Raw disk cost of CRC maintenance: sequential writes then random reads
   over the same page set, checksums on vs off.  Noise is additive, so the
   minimum over [reps] repetitions estimates the intrinsic cost. *)
let checksum_overhead ~pages ~reps =
  let run ~checksums =
    let d = Disk.create ~checksums () in
    for _ = 1 to pages do
      ignore (Disk.alloc d)
    done;
    let img = Bytes.make (Disk.page_size d) 'x' in
    let rng = Xorshift.create 11 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Sys.time () in
      for pid = 0 to pages - 1 do
        Disk.write d pid img
      done;
      for _ = 1 to pages do
        ignore (Disk.read d (Xorshift.int rng pages))
      done;
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let on = run ~checksums:true and off = run ~checksums:false in
  (on, off)

let write_json r ~checksum_on_s ~checksum_off_s ~pages =
  let oc = open_out "BENCH_recovery.json" in
  Printf.fprintf oc
    "{\n\
    \  \"description\": \"crash-at-every-write-k sweep under the flag->data->catalog->publish ordering; every crash point recovers to pre or post, torn writes are checksum-detected\",\n\
    \  \"sweep\": {\"protocol_writes\": %d, \"clean_crash_points\": %d, \"recovered_pre\": %d, \
     \"recovered_post\": %d, \"torn_points\": %d, \"torn_detected\": %d, \"torn_recovered\": %d},\n\
    \  \"recovery_ms\": {\"mean\": %.3f, \"max\": %.3f},\n\
    \  \"checksum_overhead\": {\"pages\": %d, \"on_ms\": %.3f, \"off_ms\": %.3f, \
     \"overhead_pct\": %.1f},\n\
    \  \"phases\": %s\n\
     }\n"
    r.writes r.crash_points r.pre r.post r.writes r.torn_detected r.torn_recovered
    (1000.0 *. r.reopen_total_s /. float_of_int (r.crash_points + r.writes))
    (1000.0 *. r.reopen_max_s) pages (1000.0 *. checksum_on_s) (1000.0 *. checksum_off_s)
    (if checksum_off_s > 0.0 then 100.0 *. ((checksum_on_s /. checksum_off_s) -. 1.0) else 0.0)
    (Vnl_obs.Obs.phases_json ());
  close_out oc

let run () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  (* Spans on for the whole experiment: the "phases" section reports the
     maintenance.* and recovery.* durations across the sweep (including
     the aborted spans of every injected crash). *)
  Vnl_obs.Obs.enabled := true;
  Vnl_obs.Obs.reset ();
  T.section "FAULTS  crash-recovery sweep and checksum overhead (§7)";
  let days = if smoke then 2 else 6 in
  let size = if smoke then 40 else 400 in
  let pool_capacity = if smoke then 4 else 16 in
  Printf.printf
    "Warehouse with %d days x %d groups; one refresh batch of %d logical ops.\n\
     The disk crashes at every k-th physical write (before and after the\n\
     write lands, plus a torn-prefix variant); each image is reopened and\n\
     repaired with the no-log §7 recovery.\n\n"
    days groups_per_day size;
  let r = sweep ~pool_capacity ~days ~size ~seed:20252 in
  T.print
    ~header:[ "protocol writes"; "crash points"; "-> pre"; "-> post"; "torn detected"; "torn ok" ]
    [
      [
        string_of_int r.writes;
        string_of_int r.crash_points;
        string_of_int r.pre;
        string_of_int r.post;
        string_of_int r.torn_detected;
        string_of_int r.torn_recovered;
      ];
    ];
  Printf.printf "restart-time recovery: mean %.3f ms, max %.3f ms per reopen\n\n"
    (1000.0 *. r.reopen_total_s /. float_of_int (r.crash_points + r.writes))
    (1000.0 *. r.reopen_max_s);
  let pages = if smoke then 256 else 4096 in
  let reps = if smoke then 1 else 5 in
  let on, off = checksum_overhead ~pages ~reps in
  T.subsection "checksum overhead (sequential writes + random reads)";
  T.print
    ~header:[ "pages"; "checksums on"; "checksums off"; "overhead" ]
    [
      [
        string_of_int pages;
        Printf.sprintf "%.3f ms" (1000.0 *. on);
        Printf.sprintf "%.3f ms" (1000.0 *. off);
        (if off > 0.0 then Printf.sprintf "%.1f%%" (100.0 *. ((on /. off) -. 1.0)) else "n/a");
      ];
    ];
  write_json r ~checksum_on_s:on ~checksum_off_s:off ~pages;
  print_endline
    "-> Every crash point lands on exactly the pre- or post-transaction state:\n\
    \   the tuples' own pre-update slots are the log.  Torn writes never decode\n\
    \   silently — the page CRC turns them into detected faults.  Results in\n\
    \   BENCH_recovery.json."
