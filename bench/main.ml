(* Benchmark and experiment harness.

   `dune exec bench/main.exe` regenerates every figure, table, and worked
   example in the paper plus quantitative versions of its §6 cost claims;
   see DESIGN.md §2 for the experiment index and EXPERIMENTS.md for the
   recorded results.

   Options:
     --micro        run only the Bechamel microbenchmarks
     --no-micro     run everything except the microbenchmarks
     --smoke        with --micro: run each micro workload once, no sampling
                    (what the @bench-smoke dune alias builds on)
     --only IDS     comma-separated group ids (figures, scenarios, storage,
                    io, batch, blocking, expiry, gc, ablation, indexing,
                    faults, parallel, pipeline, shard, net, micro) *)

let groups : (string * (unit -> unit)) list =
  [
    ("figures", Exp_figures.run);
    ("scenarios", Exp_scenarios.run);
    ("storage", Exp_storage.run);
    ("io", Exp_io.run);
    ("batch", Exp_batch.run);
    ("blocking", Exp_blocking.run);
    ("expiry", Exp_expiry.run);
    ("gc", Exp_gc_rollback.run);
    ("ablation", Exp_ablation.run);
    ("indexing", Exp_indexing.run);
    ("faults", Exp_faults.run);
    ("parallel", Exp_parallel.run);
    ("pipeline", Exp_pipeline.run);
    ("shard", Exp_shard.run);
    ("net", Exp_net.run);
    ("catalog", Exp_catalog.run);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let micro_only = List.mem "--micro" args in
  let no_micro = List.mem "--no-micro" args in
  let only =
    let rec find = function
      | "--only" :: ids :: _ -> Some (String.split_on_char ',' ids)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let selected id = match only with None -> true | Some ids -> List.mem id ids in
  print_endline "2VNL reproduction: experiment harness";
  print_endline "(On-Line Warehouse View Maintenance, Quass & Widom, SIGMOD 1997)";
  if not micro_only then List.iter (fun (id, f) -> if selected id then f ()) groups;
  let want_micro =
    micro_only
    || ((not no_micro) && match only with None -> true | Some ids -> List.mem "micro" ids)
  in
  if want_micro then Micro.run ~smoke_only:(List.mem "--smoke" args) ();
  print_endline "\nAll selected experiments completed."
