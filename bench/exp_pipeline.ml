(* PIPELINE: maintainer-side scaling of pipelined parallel refresh.

   The mirror of exp_parallel: fix the maintenance work (a pre-generated
   sequence of refresh batches, identical across configurations) and
   measure how fast it drains.  The serial baseline pushes every batch
   through the classic one-transaction refresh
   ({!Vnl_core.Recovery.run_maintenance}: flag, apply, full flush, full
   catalog save, publish).  The pipelined rows admit a window of up to k
   queued batches per round: the round nets the window's changes (each hot
   group resolved, written, and flushed once instead of once per batch),
   partitions them into dependency-disjoint stripes
   ({!Vnl_core.Sched_batch}) applied by k workers under nVNL (n = k + 1),
   each stripe flushing only the pages it wrote and saving the catalog
   only when its heap grew, VNs published strictly in order — so readers
   still see intermediate consistent states while the window drains, which
   a single fat serial batch cannot offer.  One reader domain runs the
   consistency-checked Example 2.1 pair throughout, so every row also
   certifies that no mixed-version read slipped through while stripes were
   publishing.

   Results go to BENCH_pipeline.json; compare.ml gates the k = 4 row's
   speedup with --pipeline-floor. *)

module Parallel = Vnl_workload.Parallel
module Obs = Vnl_obs.Obs

let worker_counts = [ 0; 1; 2; 4 ]

let write_json (reports : Parallel.pipeline_report list) ~base =
  let oc = open_out "BENCH_pipeline.json" in
  let entry (r : Parallel.pipeline_report) =
    Printf.sprintf
      "    {\"workers\": %d, \"refreshes_per_s\": %.1f, \"ops_per_s\": %.0f, \
       \"speedup\": %.2f, \"rounds\": %d, \"stripes\": %d, \"reader_queries\": %d, \
       \"expired\": %d, \"inconsistent\": %d, \"elapsed_s\": %.3f}"
      r.p_workers r.p_refreshes_per_s r.p_ops_per_s
      (if base > 0.0 then r.p_refreshes_per_s /. base else 0.0)
      r.p_rounds r.p_stripes r.p_reader_queries r.p_expired r.p_inconsistent r.p_elapsed_s
  in
  Printf.fprintf oc
    "{\n\
    \  \"description\": \"pipelined parallel maintenance: identical refresh batches drained \
     serially (workers=0) vs netted k-batch windows as k-stripe nVNL rounds at n=k+1; one \
     concurrent reader domain consistency-checks every Example 2.1 pair\",\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"phases\": %s\n\
     }\n"
    (String.concat ",\n" (List.map entry reports))
    (Obs.phases_json ());
  close_out oc

let run () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Obs.enabled := true;
  Obs.reset ();
  print_endline "\n=============================================================";
  print_endline "=== PIPELINE  serial refresh vs k-stripe pipelined rounds ===";
  print_endline "=============================================================";
  let config workers =
    {
      Parallel.default_pipeline_config with
      workers;
      (* Even the full workload drains in well under a second per
         configuration, so smoke keeps the real batch size — a toy batch
         flattens the netting win the CI floor gate exists to watch. *)
      rounds = (if smoke then 24 else 40);
      readers = 1;
      days = 4;
      batch_size = 1000;
      n = max 2 (workers + 1);
      pool_capacity = 512;
      seed = 11;
    }
  in
  let reports = List.map (fun w -> Parallel.run_pipeline (config w)) worker_counts in
  let base = (List.hd reports).Parallel.p_refreshes_per_s in
  print_endline
    "+---------+------------+-----------+---------+---------+---------+--------------+";
  print_endline
    "| workers | refresh/s  | ops/s     | speedup | stripes | queries | inconsistent |";
  print_endline
    "+---------+------------+-----------+---------+---------+---------+--------------+";
  List.iter
    (fun (r : Parallel.pipeline_report) ->
      Printf.printf "| %7s | %10.1f | %9.0f | %6.2fx | %7d | %7d | %12d |\n"
        (if r.p_workers = 0 then "serial" else string_of_int r.p_workers)
        r.p_refreshes_per_s r.p_ops_per_s
        (if base > 0.0 then r.p_refreshes_per_s /. base else 0.0)
        r.p_stripes r.p_reader_queries r.p_inconsistent)
    reports;
  print_endline
    "+---------+------------+-----------+---------+---------+---------+--------------+";
  let bad =
    List.fold_left (fun acc (r : Parallel.pipeline_report) -> acc + r.p_inconsistent) 0 reports
  in
  if bad > 0 then
    failwith (Printf.sprintf "exp_pipeline: %d inconsistent query pairs observed" bad);
  write_json reports ~base;
  Printf.printf
    "-> identical batches drained under every configuration with zero inconsistent\n\
    \   reader pairs; results written to BENCH_pipeline.json.\n"
