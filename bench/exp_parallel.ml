(* PARALLEL: reader throughput scaling on OCaml 5 domains.

   One maintenance domain applies refresh batches continuously while 1, 2,
   4, then 8 reader domains run the Example 2.1 analyst pair (city total +
   product-line drill-down) through 2VNL sessions.  The paper's claim is
   qualitative — readers are never blocked by maintenance — and this
   experiment makes it quantitative on real parallel hardware: reader
   throughput should scale with reader domains even though every query
   runs against a view under continuous refresh.  Every query pair is
   consistency-checked (drill-down must sum to the total), so the numbers
   also certify that no mixed-version read slipped through.

   Results go to BENCH_parallel.json. *)

module Parallel = Vnl_workload.Parallel
module Obs = Vnl_obs.Obs

let reader_counts = [ 1; 2; 4; 8 ]

let write_json (reports : Parallel.report list) ~base_qps =
  let oc = open_out "BENCH_parallel.json" in
  let entry (r : Parallel.report) =
    Printf.sprintf
      "    {\"readers\": %d, \"qps\": %.1f, \"speedup\": %.2f, \"p50_ms\": %.3f, \
       \"p99_ms\": %.3f, \"reader_queries\": %d, \"sessions\": %d, \"expired\": %d, \
       \"inconsistent\": %d, \"refreshes\": %d, \"elapsed_s\": %.3f}"
      r.readers r.qps
      (if base_qps > 0.0 then r.qps /. base_qps else 0.0)
      r.latency.Vnl_util.Stats.p50 r.latency.Vnl_util.Stats.p99 r.reader_queries r.sessions
      r.expired r.inconsistent r.refreshes r.elapsed_s
  in
  Printf.fprintf oc
    "{\n\
    \  \"description\": \"reader domains scaling 1/2/4/8 with one concurrent maintenance \
     domain; qps is Example 2.1 query pairs per second, consistency-checked per pair\",\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"phases\": %s\n\
     }\n"
    (String.concat ",\n" (List.map entry reports))
    (Obs.phases_json ());
  close_out oc

let run () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Obs.enabled := true;
  Obs.reset ();
  print_endline "\n==========================================================";
  print_endline "=== PARALLEL  reader domains vs one maintenance domain ===";
  print_endline "==========================================================";
  let config readers =
    {
      Parallel.default_config with
      readers;
      duration_s = (if smoke then 0.2 else 1.0);
      days = (if smoke then 6 else 20);
      batch_size = (if smoke then 60 else 120);
      pool_capacity = 512;
      seed = 7;
    }
  in
  let reports = List.map (fun readers -> Parallel.run (config readers)) reader_counts in
  let base_qps = (List.hd reports).Parallel.qps in
  print_endline
    "+---------+----------+---------+---------+---------+----------+---------+--------------+";
  print_endline
    "| readers | qps      | speedup | p50 ms  | p99 ms  | sessions | expired | inconsistent |";
  print_endline
    "+---------+----------+---------+---------+---------+----------+---------+--------------+";
  List.iter
    (fun (r : Parallel.report) ->
      Printf.printf "| %7d | %8.1f | %6.2fx | %7.3f | %7.3f | %8d | %7d | %12d |\n" r.readers
        r.qps
        (if base_qps > 0.0 then r.qps /. base_qps else 0.0)
        r.latency.Vnl_util.Stats.p50 r.latency.Vnl_util.Stats.p99 r.sessions r.expired
        r.inconsistent)
    reports;
  print_endline
    "+---------+----------+---------+---------+---------+----------+---------+--------------+";
  let bad = List.fold_left (fun acc (r : Parallel.report) -> acc + r.inconsistent) 0 reports in
  if bad > 0 then
    failwith (Printf.sprintf "exp_parallel: %d inconsistent query pairs observed" bad);
  write_json reports ~base_qps;
  Printf.printf
    "-> every drill-down summed to its city total under concurrent refresh;\n\
    \   results written to BENCH_parallel.json.\n"
