(* CATALOG: the cost of online schema evolution.

   Free-running reader domains hammer session-consistent reads and SQL
   over one view while the maintainer commits a sequence of ALTER TABLE
   .. ADD COLUMN evolutions (each stages a new catalog generation, copies
   the table, and publishes with the version).  Reader throughput is
   sampled in three windows — before, during, and after the evolutions —
   and each evolve's commit latency is measured.  Every read is
   consistency-checked: with only add_column evolutions, a session pinned
   to generation g must see exactly base_arity + g columns, and two reads
   in one session must agree.

   Results go to BENCH_catalog.json; compare.ml gates totals.dip_ratio
   (during-evolution reader throughput over baseline, --catalog-floor)
   and hard-zeroes totals.inconsistent.  The dip floor is the point: an
   evolution that starts blocking readers (a global catalog latch, a
   stop-the-world copy) collapses the during-window to ~0 and must fail
   loudly, not warn.

   Knobs: VNL_CATALOG_READERS (reader domains), VNL_CATALOG_WINDOW_MS. *)

module Warehouse = Vnl_warehouse.Warehouse
module Sales_gen = Vnl_workload.Sales_gen
module Twovnl = Vnl_core.Twovnl
module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Xorshift = Vnl_util.Xorshift
module Obs = Vnl_obs.Obs
module Load = Vnl_net.Load

let phase_baseline = 0

let phase_during = 1

let phase_post = 2

let phase_stop = 3

let write_json ~readers ~evolutions ~qps ~dip_ratio ~inconsistent ~retired ~generation =
  let oc = open_out "BENCH_catalog.json" in
  let entry (gen, what, ms) =
    Printf.sprintf "    {\"gen\": %d, \"what\": \"%s\", \"evolve_ms\": %.3f}" gen what ms
  in
  let lats = List.map (fun (_, _, ms) -> ms) evolutions in
  let mean = List.fold_left ( +. ) 0.0 lats /. float_of_int (max 1 (List.length lats)) in
  let worst = List.fold_left max 0.0 lats in
  let b, d, p = qps in
  Printf.fprintf oc
    "{\n\
    \  \"description\": \"online schema evolution: reader-domain throughput sampled \
     before/during/after a sequence of ADD COLUMN catalog generations, each evolve's \
     commit latency measured; reads consistency-checked against the session's pinned \
     generation (arity = base + generation)\",\n\
    \  \"evolutions\": [\n%s\n  ],\n\
    \  \"totals\": {\"readers\": %d, \"baseline_qps\": %.0f, \"during_qps\": %.0f, \
     \"post_qps\": %.0f, \"dip_ratio\": %.3f, \"evolve_ms_mean\": %.3f, \
     \"evolve_ms_max\": %.3f, \"inconsistent\": %d, \"generations_retired\": %d, \
     \"final_generation\": %d},\n\
    \  \"phases\": %s\n\
     }\n"
    (String.concat ",\n" (List.map entry evolutions))
    readers b d p dip_ratio mean worst inconsistent retired generation
    (Obs.phases_json ());
  close_out oc

let run () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Obs.enabled := true;
  Obs.reset ();
  print_endline "\n==============================================================";
  print_endline "=== CATALOG  online schema evolution under reader load     ===";
  print_endline "==============================================================";
  let readers = Load.env_int "VNL_CATALOG_READERS" 4 in
  let window_s =
    Load.env_float ~least:10.0 "VNL_CATALOG_WINDOW_MS" (if smoke then 150.0 else 1000.0)
    /. 1000.0
  in
  let n_evolutions = if smoke then 2 else 4 in
  let rng = Xorshift.create 23 in
  let wh = Warehouse.create ~n:3 ~pool_capacity:512 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:5 ~sales_per_day:(if smoke then 60 else 300));
  ignore (Warehouse.refresh wh);
  let vnl = Warehouse.vnl wh in
  let base_arity =
    let s = Warehouse.begin_session wh in
    let arity =
      match Warehouse.read_view wh s "DailySales" with
      | [] -> failwith "exp_catalog: empty view"
      | t :: _ -> Tuple.arity t
    in
    Warehouse.end_session wh s;
    arity
  in
  let phase = Atomic.make phase_baseline in
  let counts = Array.init 3 (fun _ -> Atomic.make 0) in
  let inconsistent = Atomic.make 0 in
  let reader_domains =
    List.init readers (fun i ->
        Domain.spawn (fun () ->
            ignore i;
            while Atomic.get phase <> phase_stop do
              let ph = Atomic.get phase in
              let s = Warehouse.begin_session wh in
              (try
                 let gen = Twovnl.Session.generation vnl s in
                 let rows = Warehouse.read_view wh s "DailySales" in
                 let want = base_arity + gen in
                 List.iter
                   (fun t -> if Tuple.arity t <> want then Atomic.incr inconsistent)
                   rows;
                 (* The query pair: SQL through the per-generation plan
                    cache must agree with the engine-level read. *)
                 let r = Warehouse.query wh s "SELECT COUNT(*) FROM DailySales" in
                 (match r.Vnl_query.Executor.rows with
                 | [ [ Value.Int c ] ] ->
                   if c <> List.length rows then Atomic.incr inconsistent
                 | _ -> Atomic.incr inconsistent);
                 if ph < 3 then Atomic.incr counts.(ph)
               with Twovnl.Expired _ -> ());
              Warehouse.end_session wh s
            done))
  in
  let window ph f =
    Atomic.set phase ph;
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let baseline_s = window phase_baseline (fun () -> Unix.sleepf window_s) in
  let evolutions = ref [] in
  let during_s =
    window phase_during (fun () ->
        let gap = window_s /. float_of_int (n_evolutions + 1) in
        for i = 0 to n_evolutions - 1 do
          Unix.sleepf gap;
          let name = Printf.sprintf "extra%d" i in
          let t0 = Unix.gettimeofday () in
          Warehouse.evolve wh
            [
              Warehouse.Add_column
                {
                  view = "DailySales";
                  attr = Schema.attr ~updatable:true name Dtype.Int;
                  default = Value.Int i;
                };
            ];
          let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          evolutions := (i + 1, "add_column " ^ name, ms) :: !evolutions
        done;
        Unix.sleepf gap)
  in
  let post_s = window phase_post (fun () -> Unix.sleepf window_s) in
  Atomic.set phase phase_stop;
  List.iter Domain.join reader_domains;
  ignore (Warehouse.collect_garbage wh);
  let retired_gens =
    Obs.Counter.get (Obs.Registry.counter "twovnl.generations_retired")
  in
  let qps i s = float_of_int (Atomic.get counts.(i)) /. s in
  let b = qps 0 baseline_s and d = qps 1 during_s and p = qps 2 post_s in
  let dip_ratio = if b > 0.0 then d /. b else 0.0 in
  let evolutions = List.rev !evolutions in
  print_endline "+----------+-----------+---------------+";
  print_endline "| window   | seconds   | reader qps    |";
  print_endline "+----------+-----------+---------------+";
  Printf.printf "| baseline | %-9.3f | %-13.0f |\n" baseline_s b;
  Printf.printf "| during   | %-9.3f | %-13.0f |\n" during_s d;
  Printf.printf "| post     | %-9.3f | %-13.0f |\n" post_s p;
  print_endline "+----------+-----------+---------------+";
  List.iter
    (fun (gen, what, ms) -> Printf.printf "  gen %d: %-20s %.3f ms\n" gen what ms)
    evolutions;
  let generation = Warehouse.catalog_generation wh in
  write_json ~readers ~evolutions ~qps:(b, d, p) ~dip_ratio
    ~inconsistent:(Atomic.get inconsistent) ~retired:retired_gens ~generation;
  Printf.printf
    "-> %d evolutions to generation %d under %d reader domains; during/baseline \
     throughput ratio %.2f; %d inconsistent reads; %d generations retired by GC; \
     results written to BENCH_catalog.json.\n"
    n_evolutions generation readers dip_ratio (Atomic.get inconsistent) retired_gens;
  if Atomic.get inconsistent > 0 then
    failwith "exp_catalog: inconsistent reads during evolution"
