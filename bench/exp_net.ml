(* NET: wire-protocol serving under session churn and on-line maintenance.

   Start the session-multiplexing server in-process on an ephemeral TCP
   port, churn the warehouse from a maintainer domain (refresh every few
   milliseconds), and drive the open-loop load generator at increasing
   client concurrency.  Every session runs the Example 2.1 query pair over
   the wire — same statement twice in one session — and any disagreement
   not explained by expiry counts as inconsistent.  A slice of sessions
   vanishes abruptly mid-cursor; after the run the server is stopped and
   the session horizon must equal currentVN (no leaked epoch pins).

   Results go to BENCH_net.json; compare.ml gates totals.qps with
   --net-floor and hard-zeroes totals.inconsistent and totals.horizon_lag.

   Knobs (hardened parsing, Load.env_int / Load.env_float): VNL_NET_SESSIONS (per
   concurrency level), VNL_NET_PORT (0 = ephemeral), VNL_NET_CHURN_MS. *)

module Warehouse = Vnl_warehouse.Warehouse
module Sales_gen = Vnl_workload.Sales_gen
module Twovnl = Vnl_core.Twovnl
module Xorshift = Vnl_util.Xorshift
module Obs = Vnl_obs.Obs
module Server = Vnl_net.Server
module Load = Vnl_net.Load

let concurrencies = [ 1; 2; 4 ]

let write_json (rows : (int * Load.report) list) ~horizon_lag =
  let oc = open_out "BENCH_net.json" in
  let entry (c, (r : Load.report)) =
    Printf.sprintf
      "    {\"sessions\": %d, \"concurrency\": %d, \"qps\": %.0f, \
       \"sessions_per_s\": %.0f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
       \"errors\": %d, \"expired\": %d, \"disconnects\": %d, \"busy\": %d, \
       \"shed\": %d, \"inconsistent\": %d, \"elapsed_s\": %.3f}"
      r.Load.l_sessions c r.Load.l_qps r.Load.l_sessions_per_s r.Load.l_p50_ms
      r.Load.l_p99_ms r.Load.l_errors r.Load.l_expired r.Load.l_disconnected
      r.Load.l_busy r.Load.l_shed r.Load.l_inconsistent r.Load.l_elapsed_s
  in
  let sum f = List.fold_left (fun t (_, r) -> t + f r) 0 rows in
  let elapsed = List.fold_left (fun t (_, r) -> t +. r.Load.l_elapsed_s) 0.0 rows in
  let requests = sum (fun r -> r.Load.l_requests) in
  Printf.fprintf oc
    "{\n\
    \  \"description\": \"wire-protocol serving: open-loop session churn (query pairs, \
     abrupt mid-cursor disconnects) against the select-loop server while a maintainer \
     domain refreshes the warehouse; consistency checked per session over the wire, \
     session horizon checked after shutdown\",\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"totals\": {\"qps\": %.0f, \"sessions\": %d, \"requests\": %d, \
     \"inconsistent\": %d, \"horizon_lag\": %d},\n\
    \  \"phases\": %s\n\
     }\n"
    (String.concat ",\n" (List.map entry rows))
    (if elapsed > 0.0 then float_of_int requests /. elapsed else 0.0)
    (sum (fun r -> r.Load.l_sessions))
    requests
    (sum (fun r -> r.Load.l_inconsistent))
    horizon_lag
    (Obs.phases_json ());
  close_out oc

let run () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Obs.enabled := true;
  Obs.reset ();
  print_endline "\n==============================================================";
  print_endline "=== NET  wire-protocol serving under churn + maintenance   ===";
  print_endline "==============================================================";
  let sessions = Load.env_int "VNL_NET_SESSIONS" (if smoke then 120 else 400) in
  let port = Load.env_int ~least:0 "VNL_NET_PORT" 0 in
  let churn_ms = Load.env_float ~least:0.1 "VNL_NET_CHURN_MS" 5.0 in
  let rng = Xorshift.create 19 in
  let wh = Warehouse.create ~pool_capacity:512 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:5 ~sales_per_day:120);
  ignore (Warehouse.refresh wh);
  let vnl = Warehouse.vnl wh in
  let srv = Server.start (Server.Tcp { host = "127.0.0.1"; port }) vnl in
  let port = Server.port srv in
  let stop = Atomic.make false in
  let maintainer =
    Domain.spawn (fun () ->
        let day = ref 6 in
        let n = ref 0 in
        while not (Atomic.get stop) do
          Unix.sleepf (churn_ms /. 1000.0);
          let src = Warehouse.source wh "DailySales" in
          Warehouse.queue_changes wh ~view:"DailySales"
            (Sales_gen.gen_batch rng src ~day:!day ~inserts:28 ~updates:8 ~deletes:4);
          incr day;
          ignore (Warehouse.refresh wh);
          incr n
        done;
        !n)
  in
  let rows =
    List.map
      (fun c ->
        let r =
          Load.run
            {
              Load.default_config with
              Load.addr = Vnl_net.Client.Tcp ("127.0.0.1", port);
              sessions;
              concurrency = c;
              fetch_size = 32;
              disconnect_prob = 0.1;
              seed = 31 + c;
            }
        in
        (c, r))
      concurrencies
  in
  Atomic.set stop true;
  let refreshes = Domain.join maintainer in
  Server.stop srv;
  ignore (Warehouse.collect_garbage wh);
  let horizon_lag = Twovnl.current_vn vnl - Twovnl.min_session_vn vnl in
  print_endline
    "+-------------+----------+--------+--------+---------+---------+---------+--------------+";
  print_endline
    "| concurrency | sessions | qps    | p50 ms | p99 ms  | expired | dropped | inconsistent |";
  print_endline
    "+-------------+----------+--------+--------+---------+---------+---------+--------------+";
  List.iter
    (fun (c, (r : Load.report)) ->
      Printf.printf "| %-11d | %-8d | %-6.0f | %-6.3f | %-7.3f | %-7d | %-7d | %-12d |\n" c
        r.Load.l_sessions r.Load.l_qps r.Load.l_p50_ms r.Load.l_p99_ms r.Load.l_expired
        (r.Load.l_disconnected + r.Load.l_shed + r.Load.l_busy)
        r.Load.l_inconsistent)
    rows;
  print_endline
    "+-------------+----------+--------+--------+---------+---------+---------+--------------+";
  write_json rows ~horizon_lag;
  Printf.printf
    "-> %d maintenance commits during serving; post-shutdown horizon lag %d \
     (0 = every session pin released); results written to BENCH_net.json.\n"
    refreshes horizon_lag;
  if horizon_lag <> 0 then failwith "exp_net: leaked session pins after shutdown"
