(* SHARD: multi-tenant sharded warehouse drain scaling.

   Fix the source feed (pre-generated batches, identical across
   configurations for one seed) and measure how fast the warehouse drains
   it at 1/2/4/8 shards.  Every round routes one global batch across the
   shards by tenant key and refreshes the round-robin shard of the round,
   so with k shards each per-shard refresh nets ~k rounds of its slice as
   one maintenance transaction — the pipelined window's netting economics
   applied across tenants, on top of per-shard version-state independence.
   One cross-shard reader domain holds VN-vector sessions throughout,
   reading the union view twice per session through independent per-shard
   extractions; any disagreement is a torn component snapshot and fails
   the run.

   Results go to BENCH_shard.json; compare.ml gates the 4-shard row's
   drain speedup with --shard-floor and the inconsistent count at 0. *)

module Sharded = Vnl_workload.Sharded
module Obs = Vnl_obs.Obs

let shard_counts = [ 1; 2; 4; 8 ]

let write_json (reports : Sharded.report list) ~base =
  let oc = open_out "BENCH_shard.json" in
  let entry (r : Sharded.report) =
    Printf.sprintf
      "    {\"shards\": %d, \"ops_per_s\": %.0f, \"speedup\": %.2f, \
       \"refreshes_per_s\": %.1f, \"rounds\": %d, \"refreshes\": %d, \
       \"reader_queries\": %d, \"expired\": %d, \"inconsistent\": %d, \
       \"union_groups\": %d, \"elapsed_s\": %.3f}"
      r.s_shards r.s_ops_per_s
      (if base > 0.0 then r.s_ops_per_s /. base else 0.0)
      r.s_refreshes_per_s r.s_rounds r.s_refreshes r.s_reader_queries r.s_expired
      r.s_inconsistent r.s_union_groups r.s_elapsed_s
  in
  Printf.fprintf oc
    "{\n\
    \  \"description\": \"multi-tenant sharded warehouse: identical tenant-routed source \
     batches drained at 1/2/4/8 shards (round-robin per-shard refresh netting ~k rounds per \
     maintenance transaction); one cross-shard reader domain consistency-checks VN-vector \
     union snapshots throughout\",\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"phases\": %s\n\
     }\n"
    (String.concat ",\n" (List.map entry reports))
    (Obs.phases_json ());
  close_out oc

let run () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Obs.enabled := true;
  Obs.reset ();
  print_endline "\n==============================================================";
  print_endline "=== SHARD  multi-tenant drain scaling across 1/2/4/8 shards ===";
  print_endline "==============================================================";
  let config shards =
    {
      Sharded.shards;
      domains = 1;
      (* Like exp_pipeline, smoke keeps the real batch size — a toy batch
         flattens the netting win the CI floor gate watches. *)
      rounds = (if smoke then 24 else 40);
      readers = 1;
      days = 4;
      batch_size = 800;
      n = 2;
      pool_capacity = 512;
      seed = 23;
    }
  in
  let reports = List.map (fun s -> Sharded.run (config s)) shard_counts in
  let base = (List.hd reports).Sharded.s_ops_per_s in
  print_endline
    "+--------+-----------+---------+-----------+---------+--------+--------------+";
  print_endline
    "| shards | ops/s     | speedup | refresh/s | queries | groups | inconsistent |";
  print_endline
    "+--------+-----------+---------+-----------+---------+--------+--------------+";
  List.iter
    (fun (r : Sharded.report) ->
      Printf.printf "| %6d | %9.0f | %6.2fx | %9.1f | %7d | %6d | %12d |\n" r.s_shards
        r.s_ops_per_s
        (if base > 0.0 then r.s_ops_per_s /. base else 0.0)
        r.s_refreshes_per_s r.s_reader_queries r.s_union_groups r.s_inconsistent)
    reports;
  print_endline
    "+--------+-----------+---------+-----------+---------+--------+--------------+";
  let bad = List.fold_left (fun acc (r : Sharded.report) -> acc + r.s_inconsistent) 0 reports in
  if bad > 0 then
    failwith (Printf.sprintf "exp_shard: %d inconsistent cross-shard pairs observed" bad);
  write_json reports ~base;
  Printf.printf
    "-> identical routed feeds drained at every shard count with zero inconsistent\n\
    \   cross-shard union pairs; results written to BENCH_shard.json.\n"
