(* bench-compare: the CI regression gate over the committed BENCH_*.json
   baselines.

   `compare.exe --baseline DIR --fresh DIR` loads each committed baseline
   from DIR(baseline) and the matching file a fresh `@bench-smoke` run left
   in DIR(fresh), then checks:

   - hard failures (exit 1): a file missing from either side, JSON that
     does not parse, a baseline key absent from the fresh output, a value
     changing JSON kind (schema drift), or a fresh file without a
     non-empty registry-sourced "phases" section;
   - soft warnings (exit 0): timing values (keys ending in _ms / _ns / _s,
     and speedup ratios) drifting by more than 3x in either direction, and
     phase-name or array-length differences inside "phases" — the smoke
     run is deliberately tiny, so its timings gate nothing.

   The asymmetry is the point: CI on a shared runner cannot hold timing
   steady, but it can hold the *shape* of every benchmark artifact steady,
   which is what downstream tooling parses. *)

module Json = Vnl_obs.Json

let bench_files =
  [
    "BENCH_maintenance.json"; "BENCH_plans.json"; "BENCH_recovery.json";
    "BENCH_parallel.json"; "BENCH_pipeline.json"; "BENCH_shard.json";
    "BENCH_net.json"; "BENCH_catalog.json";
  ]

let errors = ref 0

let warnings = ref 0

let error fmt = Printf.ksprintf (fun s -> incr errors; Printf.printf "ERROR %s\n" s) fmt

let warn fmt = Printf.ksprintf (fun s -> incr warnings; Printf.printf "warn  %s\n" s) fmt

let kind = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Num _ -> "number"
  | Json.Str _ -> "string"
  | Json.Arr _ -> "array"
  | Json.Obj _ -> "object"

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let is_timing_key k =
  ends_with ~suffix:"_ms" k || ends_with ~suffix:"_ns" k || ends_with ~suffix:"_s" k
  || String.equal k "speedup"

let check_timing path b f =
  if b > 0.0 && f > 0.0 then begin
    let ratio = if f > b then f /. b else b /. f in
    if ratio > 3.0 then warn "%s: timing drift %.3g -> %.3g (%.1fx)" path b f ratio
  end

(* Baseline-shape containment: every key path in the baseline must exist in
   the fresh output with the same JSON kind.  Inside [lenient] subtrees
   ("phases": span sets follow the exercised code paths, and the smoke run
   is smaller) structural differences warn instead of fail. *)
let rec walk ~lenient path (base : Json.t) (fresh : Json.t) =
  match (base, fresh) with
  | Json.Obj bfs, Json.Obj ffs ->
    List.iter
      (fun (k, bv) ->
        let sub = path ^ "." ^ k in
        match List.assoc_opt k ffs with
        | None ->
          if lenient then warn "%s: key missing from fresh output" sub
          else error "%s: key missing from fresh output" sub
        | Some fv -> walk ~lenient:(lenient || String.equal k "phases") sub bv fv)
      bfs
  | Json.Arr bs, Json.Arr fs ->
    let nb = List.length bs and nf = List.length fs in
    if nb <> nf then
      if lenient then warn "%s: array length %d -> %d" path nb nf
      else error "%s: array length %d -> %d (schema drift)" path nb nf;
    List.iteri
      (fun i bv ->
        match List.nth_opt fs i with
        | Some fv -> walk ~lenient (Printf.sprintf "%s[%d]" path i) bv fv
        | None -> ())
      bs
  | Json.Num b, Json.Num f ->
    let leaf =
      match String.rindex_opt path '.' with
      | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      | None -> path
    in
    if is_timing_key leaf then check_timing path b f
  | Json.Str _, Json.Str _ | Json.Bool _, Json.Bool _ | Json.Null, Json.Null -> ()
  | _ ->
    if lenient then warn "%s: kind changed %s -> %s" path (kind base) (kind fresh)
    else error "%s: kind changed %s -> %s (schema drift)" path (kind base) (kind fresh)

(* The acceptance shape of a registry-sourced phase summary (what
   [Vnl_obs.Obs.phases_json] emits). *)
let check_phases file (fresh : Json.t) =
  match Json.member "phases" fresh with
  | None -> error "%s: fresh output has no \"phases\" section" file
  | Some (Json.Obj []) -> error "%s: fresh \"phases\" section is empty" file
  | Some (Json.Obj entries) ->
    List.iter
      (fun (name, v) ->
        match v with
        | Json.Obj fields ->
          List.iter
            (fun want ->
              if not (List.mem_assoc want fields) then
                error "%s: phase %S lacks %S" file name want)
            [ "count"; "total_ms"; "mean_ms"; "p99_ms" ]
        | _ -> error "%s: phase %S is not an object" file name)
      entries
  | Some j -> error "%s: \"phases\" is %s, expected object" file (kind j)

(* Scaling-floor gate over the fresh BENCH_parallel.json: the 8-reader
   configuration must keep a minimum speedup over 1 reader and report zero
   inconsistent query pairs.  The floor (--parallel-floor, default 1.5) is
   deliberately far below the numbers a quiet machine produces — shared CI
   runners cannot hold absolute timings, but a latch-reintroduction that
   flattens the curve to ~1x must fail loudly, not warn. *)
let check_parallel_floor ~floor (fresh : Json.t) =
  let num = function Some (Json.Num n) -> Some n | _ -> None in
  match Json.member "scaling" fresh with
  | Some (Json.Arr rows) ->
    let entry r =
      match num (Json.member "readers" r) with Some n -> int_of_float n | None -> -1
    in
    (match List.find_opt (fun r -> entry r = 8) rows with
    | None -> error "BENCH_parallel.json: no 8-reader row in \"scaling\""
    | Some row ->
      (match num (Json.member "speedup" row) with
      | Some s when s < floor ->
        error "BENCH_parallel.json: 8-reader speedup %.2fx below floor %.2fx" s floor
      | Some s -> Printf.printf "ok    BENCH_parallel.json: 8-reader speedup %.2fx (floor %.2fx)\n" s floor
      | None -> error "BENCH_parallel.json: 8-reader row lacks a numeric \"speedup\"");
      (match num (Json.member "inconsistent" row) with
      | Some 0.0 -> ()
      | Some n -> error "BENCH_parallel.json: %g inconsistent query pairs at 8 readers" n
      | None -> error "BENCH_parallel.json: 8-reader row lacks \"inconsistent\""))
  | _ -> error "BENCH_parallel.json: no \"scaling\" array for the floor gate"

(* The maintainer-side twin of [check_parallel_floor], over the fresh
   BENCH_pipeline.json: the 4-worker configuration must keep a minimum
   batch-drain speedup over the serial baseline (workers = 0) and report
   zero inconsistent reader pairs.  The floor (--pipeline-floor, default
   1.2) again sits well under a quiet machine's numbers (~2x): the gate is
   for a regression that flattens pipelining back to serial — a lost
   netting window, a partitioner that stops splitting, or a stripe
   protocol change that re-serializes the round. *)
let check_pipeline_floor ~floor (fresh : Json.t) =
  let num = function Some (Json.Num n) -> Some n | _ -> None in
  match Json.member "scaling" fresh with
  | Some (Json.Arr rows) ->
    let entry r =
      match num (Json.member "workers" r) with Some n -> int_of_float n | None -> -1
    in
    (match List.find_opt (fun r -> entry r = 4) rows with
    | None -> error "BENCH_pipeline.json: no 4-worker row in \"scaling\""
    | Some row ->
      (match num (Json.member "speedup" row) with
      | Some s when s < floor ->
        error "BENCH_pipeline.json: 4-worker speedup %.2fx below floor %.2fx" s floor
      | Some s -> Printf.printf "ok    BENCH_pipeline.json: 4-worker speedup %.2fx (floor %.2fx)\n" s floor
      | None -> error "BENCH_pipeline.json: 4-worker row lacks a numeric \"speedup\"");
      (match num (Json.member "inconsistent" row) with
      | Some 0.0 -> ()
      | Some n -> error "BENCH_pipeline.json: %g inconsistent query pairs at 4 workers" n
      | None -> error "BENCH_pipeline.json: 4-worker row lacks \"inconsistent\""))
  | _ -> error "BENCH_pipeline.json: no \"scaling\" array for the floor gate"

(* The sharding twin, over the fresh BENCH_shard.json: the 4-shard
   configuration must keep a minimum drain speedup over 1 shard and report
   zero inconsistent cross-shard union pairs.  The floor (--shard-floor,
   default 1.3) sits well under a quiet machine's ~2.3x: the gate is for a
   regression that erases the per-shard netting win or lets a VN-vector
   snapshot tear. *)
let check_shard_floor ~floor (fresh : Json.t) =
  let num = function Some (Json.Num n) -> Some n | _ -> None in
  match Json.member "scaling" fresh with
  | Some (Json.Arr rows) ->
    let entry r =
      match num (Json.member "shards" r) with Some n -> int_of_float n | None -> -1
    in
    (match List.find_opt (fun r -> entry r = 4) rows with
    | None -> error "BENCH_shard.json: no 4-shard row in \"scaling\""
    | Some row ->
      (match num (Json.member "speedup" row) with
      | Some s when s < floor ->
        error "BENCH_shard.json: 4-shard drain speedup %.2fx below floor %.2fx" s floor
      | Some s -> Printf.printf "ok    BENCH_shard.json: 4-shard drain speedup %.2fx (floor %.2fx)\n" s floor
      | None -> error "BENCH_shard.json: 4-shard row lacks a numeric \"speedup\"");
      (match num (Json.member "inconsistent" row) with
      | Some 0.0 -> ()
      | Some n -> error "BENCH_shard.json: %g inconsistent cross-shard pairs at 4 shards" n
      | None -> error "BENCH_shard.json: 4-shard row lacks \"inconsistent\""))
  | _ -> error "BENCH_shard.json: no \"scaling\" array for the floor gate"

(* The serving gate, over BENCH_net.json.  Unlike the speedup floors this
   one is a *ratio against the committed baseline*: fresh totals.qps must
   reach at least [floor] (default 0.05) of the baseline's — absolute
   throughput varies wildly across runners, but a 20x collapse means the
   select loop serialized or the server is shedding everything.  Two
   hard zeros ride along: totals.inconsistent (a query pair disagreed
   within one session over the wire — the 2VNL guarantee broke) and
   totals.horizon_lag (session pins still held after shutdown — a leaked
   epoch pin would stall GC forever). *)
let check_net_floor ~floor ~(baseline : Json.t option) (fresh : Json.t) =
  let num j k = match Json.member k j with Some (Json.Num n) -> Some n | _ -> None in
  match Json.member "totals" fresh with
  | Some totals ->
    (match num totals "qps" with
    | Some f_qps -> (
      match baseline with
      | None -> ()
      | Some b -> (
        match Json.member "totals" b with
        | Some bt -> (
          match num bt "qps" with
          | Some b_qps when b_qps > 0.0 ->
            let ratio = f_qps /. b_qps in
            if ratio < floor then
              error "BENCH_net.json: qps %.0f is %.3fx of baseline %.0f (floor %.3fx)"
                f_qps ratio b_qps floor
            else
              Printf.printf "ok    BENCH_net.json: qps %.0f, %.2fx of baseline %.0f (floor %.3fx)\n"
                f_qps ratio b_qps floor
          | _ -> error "BENCH_net.json: baseline \"totals\" lacks a positive \"qps\"")
        | None -> error "BENCH_net.json: baseline has no \"totals\" section"))
    | None -> error "BENCH_net.json: fresh \"totals\" lacks a numeric \"qps\"");
    (match num totals "inconsistent" with
    | Some 0.0 -> ()
    | Some n -> error "BENCH_net.json: %g inconsistent query pairs over the wire" n
    | None -> error "BENCH_net.json: \"totals\" lacks \"inconsistent\"");
    (match num totals "horizon_lag" with
    | Some 0.0 -> ()
    | Some n -> error "BENCH_net.json: horizon lag %g after shutdown (leaked session pins)" n
    | None -> error "BENCH_net.json: \"totals\" lacks \"horizon_lag\"")
  | None -> error "BENCH_net.json: no \"totals\" section for the floor gate"

(* The evolution gate, over BENCH_catalog.json: reader throughput while
   ADD COLUMN generations stage, copy, and publish must stay above
   [floor] (--catalog-floor, default 0.25) of the pre-evolution baseline.
   Readers never block under the generational catalog, so a healthy run
   sits near 1.0 even on a noisy runner; a collapse to ~0 means an
   evolution started blocking readers (a global catalog latch, a
   stop-the-world copy).  totals.inconsistent — a read whose arity
   disagreed with its session's pinned generation, or a query pair that
   disagreed within one session — is a hard zero. *)
let check_catalog_floor ~floor (fresh : Json.t) =
  let num j k = match Json.member k j with Some (Json.Num n) -> Some n | _ -> None in
  match Json.member "totals" fresh with
  | Some totals ->
    (match num totals "dip_ratio" with
    | Some r when r < floor ->
      error "BENCH_catalog.json: during-evolution reader throughput %.2fx of baseline, \
             below floor %.2fx" r floor
    | Some r ->
      Printf.printf
        "ok    BENCH_catalog.json: during-evolution reader throughput %.2fx of baseline \
         (floor %.2fx)\n" r floor
    | None -> error "BENCH_catalog.json: \"totals\" lacks a numeric \"dip_ratio\"");
    (match num totals "inconsistent" with
    | Some 0.0 -> ()
    | Some n -> error "BENCH_catalog.json: %g inconsistent reads during evolution" n
    | None -> error "BENCH_catalog.json: \"totals\" lacks \"inconsistent\"")
  | None -> error "BENCH_catalog.json: no \"totals\" section for the floor gate"

let load side path =
  if not (Sys.file_exists path) then begin
    error "%s file %s is missing" side path;
    None
  end
  else
    match Json.parse_file path with
    | j -> Some j
    | exception Json.Parse_error msg ->
      error "%s file %s does not parse: %s" side path msg;
      None

let compare_file ~baseline ~fresh file =
  let b = load "baseline" (Filename.concat baseline file) in
  let f = load "fresh" (Filename.concat fresh file) in
  match (b, f) with
  | Some b, Some f ->
    check_phases file f;
    walk ~lenient:false file b f
  | _ -> ()

let usage () =
  prerr_endline
    "usage: compare.exe --baseline DIR --fresh DIR [--parallel-floor X] [--pipeline-floor X] \
     [--shard-floor X] [--net-floor X] [--catalog-floor X]";
  exit 2

let () =
  let baseline = ref "." and fresh = ref "" in
  let floor = ref 1.5 and pipeline_floor = ref 1.2 and shard_floor = ref 1.3 in
  let net_floor = ref 0.05 in
  let catalog_floor = ref 0.25 in
  let positive name x k =
    match float_of_string_opt x with
    | Some f when f > 0.0 -> k f
    | Some _ | None ->
      Printf.eprintf "%s: expected a positive number, got %S\n" name x;
      usage ()
  in
  let rec parse = function
    | "--baseline" :: dir :: rest -> baseline := dir; parse rest
    | "--fresh" :: dir :: rest -> fresh := dir; parse rest
    | "--parallel-floor" :: x :: rest ->
      positive "--parallel-floor" x (fun f -> floor := f; parse rest)
    | "--pipeline-floor" :: x :: rest ->
      positive "--pipeline-floor" x (fun f -> pipeline_floor := f; parse rest)
    | "--shard-floor" :: x :: rest ->
      positive "--shard-floor" x (fun f -> shard_floor := f; parse rest)
    | "--net-floor" :: x :: rest ->
      positive "--net-floor" x (fun f -> net_floor := f; parse rest)
    | "--catalog-floor" :: x :: rest ->
      positive "--catalog-floor" x (fun f -> catalog_floor := f; parse rest)
    | [] -> ()
    | arg :: _ -> Printf.eprintf "unknown argument %S\n" arg; usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if String.equal !fresh "" then usage ();
  Printf.printf "bench-compare: baseline=%s fresh=%s\n" !baseline !fresh;
  List.iter (compare_file ~baseline:!baseline ~fresh:!fresh) bench_files;
  Option.iter (check_parallel_floor ~floor:!floor)
    (load "fresh" (Filename.concat !fresh "BENCH_parallel.json"));
  Option.iter (check_pipeline_floor ~floor:!pipeline_floor)
    (load "fresh" (Filename.concat !fresh "BENCH_pipeline.json"));
  Option.iter (check_shard_floor ~floor:!shard_floor)
    (load "fresh" (Filename.concat !fresh "BENCH_shard.json"));
  Option.iter
    (check_net_floor ~floor:!net_floor
       ~baseline:(load "baseline" (Filename.concat !baseline "BENCH_net.json")))
    (load "fresh" (Filename.concat !fresh "BENCH_net.json"));
  Option.iter (check_catalog_floor ~floor:!catalog_floor)
    (load "fresh" (Filename.concat !fresh "BENCH_catalog.json"));
  Printf.printf "bench-compare: %d error(s), %d warning(s) over %d file(s)\n" !errors
    !warnings (List.length bench_files);
  exit (if !errors > 0 then 1 else 0)
