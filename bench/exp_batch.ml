(* BATCH: batched maintenance apply (net-effect fold + one sorted index
   pass + page-ordered writes) vs per-op application on the sales workload.

   Both variants run the same deterministic logical operation stream over
   identically preloaded warehouses — the differential test suite proves
   they produce byte-identical state, so the comparison is purely about
   cost.  The stream mimics one day of warehouse refresh traffic per
   transaction (the paper's Example 2.1): most operations are incoming
   sales accumulating into today's few DailySales groups (the net-effect
   fold collapses them to one physical action per group), a tail corrects
   random historical groups (random pages, where the page-ordered apply
   and the sequential flush pay off), plus a trickle of retirements.

   Results go to BENCH_maintenance.json; the second table fixes the batch
   size and shrinks the buffer pool to show the access-pattern effect on
   hit rates and the sequential/random write split. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Buffer_pool = Vnl_storage.Buffer_pool
module Twovnl = Vnl_core.Twovnl
module Batch = Vnl_core.Batch
module Xorshift = Vnl_util.Xorshift
module Sales = Vnl_workload.Sales_gen
module T = Vnl_util.Ascii_table

let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let groups_per_day = Array.length Sales.cities * Array.length Sales.product_lines

let preload_days = 30

let group_key gid ~day =
  let city, state = Sales.cities.(gid mod Array.length Sales.cities) in
  let pl = Sales.product_lines.(gid / Array.length Sales.cities) in
  [ Value.Str city; Value.Str state; Value.Str pl; Sales.date_of_day day ]

(* One logical operation against the live-group model. *)
type gop =
  | G_insert of Value.t list * int
  | G_update of Value.t list * int
  | G_delete of Value.t list

(* [hist] holds the (day, gid) groups of completed days still live; each
   maintenance transaction is one day of traffic. *)
type model = {
  rng : Xorshift.t;
  mutable hist : (int * int) array;
  mutable n_hist : int;
  mutable today : int;
}

let mk_model seed =
  let hist = Array.make (preload_days * groups_per_day * 4) (0, 0) in
  let i = ref 0 in
  for day = 0 to preload_days - 1 do
    for gid = 0 to groups_per_day - 1 do
      hist.(!i) <- (day, gid);
      incr i
    done
  done;
  { rng = Xorshift.create seed; hist; n_hist = !i; today = preload_days }

(* One day of warehouse refresh traffic (the paper's Example 2.1): 94% of
   operations are incoming sales accumulating into today's <= 96 DailySales
   groups — the first sale of a group inserts it, every later one updates
   it, which is exactly what the batched path folds to net effect — 4%
   correct random historical groups (random pages, where the sorted index
   pass and page-ordered apply pay off), and 2% retire a historical group.
   Only groups live before the day started are retired, never today's
   fresh inserts, keeping Batch's documented divergence corner out of the
   stream. *)
let gen_ops m size =
  let day = m.today in
  m.today <- m.today + 1;
  let today_live = Array.make groups_per_day false in
  let amount () = 100 + Xorshift.int m.rng 20_000 in
  let ops = ref [] in
  for _ = 1 to size do
    let r = Xorshift.float m.rng 1.0 in
    let op =
      if r < 0.94 || m.n_hist = 0 then begin
        let gid = Xorshift.int m.rng groups_per_day in
        if today_live.(gid) then G_update (group_key gid ~day, amount ())
        else begin
          today_live.(gid) <- true;
          G_insert (group_key gid ~day, amount ())
        end
      end
      else if r < 0.98 then begin
        let d, gid = m.hist.(Xorshift.int m.rng m.n_hist) in
        G_update (group_key gid ~day:d, amount ())
      end
      else begin
        let i = Xorshift.int m.rng m.n_hist in
        let d, gid = m.hist.(i) in
        m.hist.(i) <- m.hist.(m.n_hist - 1);
        m.n_hist <- m.n_hist - 1;
        G_delete (group_key gid ~day:d)
      end
    in
    ops := op :: !ops
  done;
  (* The day is over: its surviving groups join the history. *)
  Array.iteri
    (fun gid live ->
      if live then begin
        if m.n_hist >= Array.length m.hist then begin
          let bigger = Array.make (2 * Array.length m.hist) (0, 0) in
          Array.blit m.hist 0 bigger 0 m.n_hist;
          m.hist <- bigger
        end;
        m.hist.(m.n_hist) <- (day, gid);
        m.n_hist <- m.n_hist + 1
      end)
    today_live;
  List.rev !ops

let table_name = "DailySales"

let mk_wh ~pool_capacity =
  let db = Database.create ~pool_capacity () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:table_name daily_sales);
  let rows = ref [] in
  for day = preload_days - 1 downto 0 do
    for gid = groups_per_day - 1 downto 0 do
      rows := Tuple.make daily_sales (group_key gid ~day @ [ Value.Int 1000 ]) :: !rows
    done
  done;
  Twovnl.load_initial wh table_name !rows;
  (db, wh)

let apply_per_op m ops =
  List.iter
    (fun op ->
      match op with
      | G_insert (key, v) -> Twovnl.Txn.insert m ~table:table_name (key @ [ Value.Int v ])
      | G_update (key, v) ->
        ignore
          (Twovnl.Txn.update_by_key m ~table:table_name ~key
             ~set:[ ("total_sales", Value.Int v) ])
      | G_delete key -> ignore (Twovnl.Txn.delete_by_key m ~table:table_name ~key))
    ops

let to_batch ops =
  List.map
    (fun op ->
      match op with
      | G_insert (key, v) -> Batch.Insert (Tuple.make daily_sales (key @ [ Value.Int v ]))
      | G_update (key, v) -> Batch.Update (key, [ (4, Value.Int v) ])
      | G_delete key -> Batch.Delete key)
    ops

type io = { misses : int; writes : int; seq : int; rand : int }

let io_of db =
  let s = Database.io_stats db in
  {
    misses = s.Buffer_pool.misses;
    writes = s.Buffer_pool.physical_writes;
    seq = s.Buffer_pool.seq_writes;
    rand = s.Buffer_pool.rand_writes;
  }

(* Run [txns] maintenance transactions of [size] ops through [apply] and
   return (total seconds, io counters, fold outcome totals).  The first two
   transactions warm the pool and are not measured.  [prepare] converts the
   generated stream to the variant's input form outside the timed region —
   the stream arrives once either way, so its construction is not an apply
   cost. *)
let run_variant ~pool_capacity ~seed ~size ~txns ~prepare apply =
  let db, wh = mk_wh ~pool_capacity in
  let model = mk_model seed in
  let batches = List.init (txns + 2) (fun _ -> prepare (gen_ops model size)) in
  let measured = ref 0.0 and warm = ref 2 in
  Database.reset_io_stats db;
  Gc.compact ();
  let folded = ref 0 and distinct = ref 0 in
  List.iter
    (fun ops ->
      if !warm = 0 then begin
        let t0 = Sys.time () in
        let m = Twovnl.Txn.begin_ wh in
        (match apply m ops with
        | None -> ()
        | Some (o : Batch.outcome) ->
          folded := !folded + o.Batch.folded_ops;
          distinct := !distinct + o.Batch.distinct_keys);
        Twovnl.Txn.commit m;
        Buffer_pool.flush_all (Database.pool db);
        measured := !measured +. (Sys.time () -. t0)
      end
      else begin
        decr warm;
        let m = Twovnl.Txn.begin_ wh in
        ignore (apply m ops);
        Twovnl.Txn.commit m;
        Buffer_pool.flush_all (Database.pool db);
        if !warm = 0 then Database.reset_io_stats db
      end)
    batches;
  (!measured, io_of db, !folded, !distinct)

let per_op_variant m ops =
  apply_per_op m ops;
  None

let batched_variant m ops = Some (Twovnl.Txn.apply_batch m ~table:table_name ops)

type size_row = {
  size : int;
  txns : int;
  per_ms : float;
  batch_ms : float;
  speedup : float;
  per_io : io;
  batch_io : io;
  avg_distinct : float;
  avg_folded : float;
}

(* Shared-host scheduling noise is strictly additive, so the minimum over a
   few interleaved repetitions estimates each variant's intrinsic cost under
   like conditions; the interleaving keeps slow drift from favouring one
   side.  The streams are deterministic per seed, so the I/O counters and
   fold totals are identical across repetitions. *)
let run_size ~reps ~pool_capacity ~seed ~size ~txns =
  let per_s = ref infinity and bat_s = ref infinity in
  let per_io = ref None and batch_io = ref None in
  let folded = ref 0 and distinct = ref 0 in
  for rep = 1 to reps do
    let p, pio, _, _ =
      run_variant ~pool_capacity ~seed ~size ~txns ~prepare:(fun ops -> ops) per_op_variant
    in
    let b, bio, f, d =
      run_variant ~pool_capacity ~seed ~size ~txns ~prepare:to_batch batched_variant
    in
    if p < !per_s then per_s := p;
    if b < !bat_s then bat_s := b;
    if rep = 1 then begin
      per_io := Some pio;
      batch_io := Some bio;
      folded := f;
      distinct := d
    end
  done;
  let per_io = Option.get !per_io and batch_io = Option.get !batch_io in
  let folded = !folded and distinct = !distinct in
  let per_ms = !per_s *. 1000.0 /. float_of_int txns
  and batch_ms = !bat_s *. 1000.0 /. float_of_int txns in
  {
    size;
    txns;
    per_ms;
    batch_ms;
    speedup = per_ms /. batch_ms;
    per_io;
    batch_io;
    avg_distinct = float_of_int distinct /. float_of_int txns;
    avg_folded = float_of_int folded /. float_of_int txns;
  }

type pool_row = {
  capacity : int;
  per_hits : int;
  per_logical : int;
  bat_hits : int;
  bat_logical : int;
  pool_per_io : io;
  pool_bat_io : io;
}

let hit_rate hits logical =
  if logical = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int logical

let run_pool ~seed ~size ~txns ~capacity =
  let logical_and_hits db =
    let s = Database.io_stats db in
    (s.Buffer_pool.hits, s.Buffer_pool.logical_reads)
  in
  let run prepare apply =
    let db, wh = mk_wh ~pool_capacity:capacity in
    let model = mk_model seed in
    let batches = List.init txns (fun _ -> prepare (gen_ops model size)) in
    Database.reset_io_stats db;
    List.iter
      (fun ops ->
        let m = Twovnl.Txn.begin_ wh in
        ignore (apply m ops);
        Twovnl.Txn.commit m;
        Buffer_pool.flush_all (Database.pool db))
      batches;
    (logical_and_hits db, io_of db)
  in
  let (per_hits, per_logical), pool_per_io = run (fun ops -> ops) per_op_variant in
  let (bat_hits, bat_logical), pool_bat_io = run to_batch batched_variant in
  { capacity; per_hits; per_logical; bat_hits; bat_logical; pool_per_io; pool_bat_io }

let write_json rows pools =
  let oc = open_out "BENCH_maintenance.json" in
  Printf.fprintf oc
    "{\n\
    \  \"description\": \"batched maintenance apply (net-effect fold + sorted index pass + page-ordered writes) vs per-op apply; sales workload, ms per maintenance transaction\",\n\
    \  \"batches\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"batch_size\": %d, \"txns\": %d, \"per_op_ms\": %.3f, \"batched_ms\": %.3f, \
         \"speedup\": %.2f, \"avg_distinct_keys\": %.1f, \"avg_folded_ops\": %.1f, \
         \"per_op_io\": {\"misses\": %d, \"writes\": %d, \"seq\": %d, \"rand\": %d}, \
         \"batched_io\": {\"misses\": %d, \"writes\": %d, \"seq\": %d, \"rand\": %d}}%s\n"
        r.size r.txns r.per_ms r.batch_ms r.speedup r.avg_distinct r.avg_folded r.per_io.misses
        r.per_io.writes r.per_io.seq r.per_io.rand r.batch_io.misses r.batch_io.writes
        r.batch_io.seq r.batch_io.rand
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"buffer_pool\": [\n";
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"capacity\": %d, \"per_op_hit_rate\": %.1f, \"batched_hit_rate\": %.1f, \
         \"per_op_seq_writes\": %d, \"per_op_rand_writes\": %d, \"batched_seq_writes\": %d, \
         \"batched_rand_writes\": %d}%s\n"
        p.capacity
        (hit_rate p.per_hits p.per_logical)
        (hit_rate p.bat_hits p.bat_logical)
        p.pool_per_io.seq p.pool_per_io.rand p.pool_bat_io.seq p.pool_bat_io.rand
        (if i = List.length pools - 1 then "" else ","))
    pools;
  Printf.fprintf oc "  ],\n  \"phases\": %s\n}\n" (Vnl_obs.Obs.phases_json ());
  close_out oc

let run () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  (* Spans on for the whole experiment: the "phases" section reports this
     run's batch.group/resolve/fold/apply durations.  The spans fire once
     per transaction (µs of Sys.time against ms-scale transactions), so
     they do not disturb the per-op-vs-batched comparison. *)
  Vnl_obs.Obs.enabled := true;
  Vnl_obs.Obs.reset ();
  T.section "BATCH  batched vs per-op maintenance apply (net effect + page order)";
  Printf.printf
    "DailySales warehouse: %d days x %d groups preloaded; each transaction is one\n\
     day of traffic: sales accumulating into today's groups (94%%), historical\n\
     corrections (4%%) and retirements (2%%).\n\n"
    preload_days groups_per_day;
  let seed = 20251 in
  let configs =
    if smoke then [ (10, 4); (100, 3); (1000, 2) ]
    else [ (10, 400); (100, 120); (1000, 60) ]
  in
  (* The size sweep isolates apply cost: the pool is sized to the working
     set so neither variant pays eviction misses (the small-pool I/O story
     is the second table's job). *)
  let reps = if smoke then 1 else 3 in
  let rows =
    List.map (fun (size, txns) -> run_size ~reps ~pool_capacity:512 ~seed ~size ~txns) configs
  in
  T.print
    ~header:
      [ "batch size"; "per-op ms/txn"; "batched ms/txn"; "speedup"; "keys/txn"; "folded/txn" ]
    (List.map
       (fun r ->
         [
           string_of_int r.size;
           Printf.sprintf "%.3f" r.per_ms;
           Printf.sprintf "%.3f" r.batch_ms;
           Printf.sprintf "%.2fx" r.speedup;
           Printf.sprintf "%.0f" r.avg_distinct;
           Printf.sprintf "%.0f" r.avg_folded;
         ])
       rows);
  T.subsection "physical writes (whole measured run, after warm-up)";
  T.print
    ~header:[ "batch size"; "per-op writes (seq/rand)"; "batched writes (seq/rand)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.size;
           Printf.sprintf "%d (%d/%d)" r.per_io.writes r.per_io.seq r.per_io.rand;
           Printf.sprintf "%d (%d/%d)" r.batch_io.writes r.batch_io.seq r.batch_io.rand;
         ])
       rows);
  let pool_txns = if smoke then 2 else 10 in
  let pools =
    List.map (fun capacity -> run_pool ~seed ~size:1000 ~txns:pool_txns ~capacity) [ 4; 8; 16; 64 ]
  in
  T.subsection
    (Printf.sprintf "buffer pool at batch size 1000 (%d transactions)" pool_txns);
  T.print
    ~header:[ "frames"; "per-op hit rate"; "batched hit rate"; "per-op seq/rand"; "batched seq/rand" ]
    (List.map
       (fun p ->
         [
           string_of_int p.capacity;
           Printf.sprintf "%.1f%%" (hit_rate p.per_hits p.per_logical);
           Printf.sprintf "%.1f%%" (hit_rate p.bat_hits p.bat_logical);
           Printf.sprintf "%d/%d" p.pool_per_io.seq p.pool_per_io.rand;
           Printf.sprintf "%d/%d" p.pool_bat_io.seq p.pool_bat_io.rand;
         ])
       pools);
  write_json rows pools;
  print_endline
    "-> Folding same-key operations to net effect makes a key touched k times\n\
    \   cost one physical rewrite; the single sorted index pass and the\n\
    \   (page, slot)-ordered apply turn the write pattern sequential, which\n\
    \   small pools reward with hit rate.  Results in BENCH_maintenance.json."
