(* MICRO: Bechamel microbenchmarks for the CPU-side overhead of the 2VNL
   hot paths (§6 discusses run-time overhead qualitatively): per-tuple
   reader extraction, the reader query rewrite, maintenance decision-table
   application, unique-key probes, version-pool fetches, and the compiled
   (prepared) reader path against parse+rewrite+interpret.

   The prepared-vs-interpreted pairs are also timed with a plain
   wall-clock loop and written to BENCH_plans.json, the committed record
   of the plan-compilation speedup. *)

open Bechamel
open Toolkit
module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Prepared = Vnl_query.Prepared
module Op = Vnl_core.Op
module Schema_ext = Vnl_core.Schema_ext
module Reader = Vnl_core.Reader
module Maintenance = Vnl_core.Maintenance
module Rewrite = Vnl_core.Rewrite
module Twovnl = Vnl_core.Twovnl
module Bptree = Vnl_index.Bptree
module Version_pool = Vnl_txn.Version_pool

let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let ext = Schema_ext.extend daily_sales

let ext_tuple =
  Tuple.make (Schema_ext.extended ext)
    [
      Value.Int 4; Op.to_value Op.Update; Value.Str "San Jose"; Value.Str "CA";
      Value.Str "golf equip"; Value.date_of_mdy 10 14 96; Value.Int 12000; Value.Int 10000;
    ]

let extract_current () = Reader.extract ext ~session_vn:4 ext_tuple

let extract_pre () = Reader.extract ext ~session_vn:3 ext_tuple

let bench_extract_current =
  Test.make ~name:"reader extract (current version)" (Staged.stage extract_current)

let bench_extract_pre =
  Test.make ~name:"reader extract (pre-update version)" (Staged.stage extract_pre)

let analyst_query =
  "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state"

let lookup name = if String.equal name "DailySales" then Some ext else None

let parsed_query = Vnl_sql.Parser.parse_select analyst_query

let rewrite_only () = Rewrite.reader_select ~lookup parsed_query

let parse_and_rewrite () = Rewrite.reader_sql ~lookup analyst_query

let bench_rewrite =
  Test.make ~name:"reader query rewrite (Example 4.1)" (Staged.stage rewrite_only)

let bench_parse_and_rewrite =
  Test.make ~name:"parse + rewrite + print" (Staged.stage parse_and_rewrite)

(* Maintenance update applied to a one-tuple table, alternating values so
   the work does not degenerate. *)
let maint_setup () =
  let db = Database.create () in
  let table = Database.create_table db "T" (Schema_ext.extended ext) in
  let rid =
    Maintenance.apply_insert ext table ~vn:2
      (Tuple.make daily_sales
         [ Value.Str "San Jose"; Value.Str "CA"; Value.Str "golf equip";
           Value.date_of_mdy 10 14 96; Value.Int 100 ])
  in
  (table, rid)

let maintenance_update =
  let table, rid = maint_setup () in
  let vn = ref 3 in
  fun () ->
    incr vn;
    Maintenance.apply_update ext table ~vn:!vn rid [ (4, Value.Int !vn) ]

let bench_maintenance_update =
  Test.make ~name:"maintenance update (Table 3 step)" (Staged.stage maintenance_update)

let bptree_probe =
  let tree = Bptree.create () in
  let () =
    for i = 0 to 9999 do
      Bptree.insert tree [ Value.Int i ] i
    done
  in
  let i = ref 0 in
  fun () ->
    i := (!i + 7919) mod 10000;
    Bptree.find tree [ Value.Int !i ]

let bench_bptree_probe =
  Test.make ~name:"B+-tree key probe (10k keys)" (Staged.stage bptree_probe)

let pool_fetch =
  let disk = Vnl_storage.Disk.create () in
  let bp = Vnl_storage.Buffer_pool.create ~capacity:64 disk in
  let pool = Version_pool.create bp daily_sales in
  let key = { Version_pool.page = 0; slot = 0 } in
  let () =
    for vn = 1 to 8 do
      Version_pool.stash pool ~key ~vn
        (Tuple.make daily_sales
           [ Value.Str "San Jose"; Value.Str "CA"; Value.Str "golf equip";
             Value.date_of_mdy 10 14 96; Value.Int (vn * 100) ])
    done
  in
  fun () -> Version_pool.fetch pool ~key ~max_vn:2

let bench_pool_fetch =
  Test.make ~name:"version-pool fetch (8-deep chain)" (Staged.stage pool_fetch)

let group_by_db =
  lazy
    (let db = Database.create ~pool_capacity:512 () in
     let table = Database.create_table db "DailySales" daily_sales in
     let rng = Vnl_util.Xorshift.create 3 in
     List.iter
       (fun (city, state) ->
         List.iteri
           (fun d pl ->
             ignore
               (Table.insert table
                  (Tuple.make daily_sales
                     [ Value.Str city; Value.Str state; Value.Str pl;
                       Value.date_of_mdy 10 ((d mod 27) + 1) 96;
                       Value.Int (Vnl_util.Xorshift.int rng 1000) ])))
           [ "golf equip"; "racquetball"; "tennis"; "running" ])
       (Array.to_list Vnl_workload.Sales_gen.cities);
     db)

let group_by_query () = Executor.query_string (Lazy.force group_by_db) analyst_query

let bench_group_by_query =
  Test.make ~name:"group-by query (48 rows)" (Staged.stage group_by_query)

(* §5: "the higher n is, the more overhead we incur in ... run-time costs"
   — measure per-tuple extraction of the oldest readable version as n
   grows. *)
let extract_for_n n =
  let extn = Schema_ext.extend ~n daily_sales in
  let db = Database.create () in
  let table = Database.create_table db "N" (Schema_ext.extended extn) in
  let rid =
    Maintenance.apply_insert extn table ~vn:2
      (Tuple.make daily_sales
         [ Value.Str "San Jose"; Value.Str "CA"; Value.Str "golf equip";
           Value.date_of_mdy 10 14 96; Value.Int 100 ])
  in
  for vn = 3 to n + 1 do
    Maintenance.apply_update extn table ~vn rid [ (4, Value.Int (vn * 10)) ]
  done;
  let tuple = Option.get (Table.get table rid) in
  fun () -> Reader.extract extn ~session_vn:2 tuple

let bench_extract_by_n =
  Test.make_indexed ~name:"nVNL extract oldest version" ~args:[ 2; 3; 4; 6 ] (fun n ->
      Staged.stage (extract_for_n n))

(* ------------------------------------------------------------------ *)
(* Prepared vs interpreted: the 2VNL reader hot path.                  *)
(* ------------------------------------------------------------------ *)

(* The same session statements executed two ways:
   - interpreted: parse + §4.1 rewrite + tree-walking interpreter, every
     call (what every reader query cost before plan compilation);
   - prepared: Twovnl.Session.query — compiled once into closures, then
     revalidated and re-executed from the plan cache (with the §4.1 fast
     path answering full-scan statements by engine-level extraction). *)
let plans_fixture =
  lazy
    (let db = Database.create ~pool_capacity:512 () in
     let wh = Twovnl.init db in
     ignore (Twovnl.register_table wh ~name:"DailySales" daily_sales);
     let rng = Vnl_util.Xorshift.create 7 in
     let rows = ref [] in
     List.iter
       (fun (city, state) ->
         List.iteri
           (fun d pl ->
             rows :=
               Tuple.make daily_sales
                 [ Value.Str city; Value.Str state; Value.Str pl;
                   Value.date_of_mdy 10 ((d mod 27) + 1) 96;
                   Value.Int (Vnl_util.Xorshift.int rng 1000) ]
               :: !rows)
           [ "golf equip"; "racquetball"; "tennis"; "running" ])
       (Array.to_list Vnl_workload.Sales_gen.cities);
     Twovnl.load_initial wh "DailySales" (List.rev !rows);
     let s = Twovnl.Session.begin_ wh in
     (db, wh, s))

let point_probe_query =
  "SELECT total_sales FROM DailySales WHERE city = :city AND state = :state \
   AND product_line = :pl AND date = DATE '10/14/96'"

let point_probe_params =
  [ ("city", Value.Str "San Jose"); ("state", Value.Str "CA");
    ("pl", Value.Str "golf equip") ]

let drill_down_query =
  "SELECT product_line, SUM(total_sales) FROM DailySales WHERE city = :city \
   GROUP BY product_line"

let drill_down_params = [ ("city", Value.Str "San Jose") ]

let interpreted_reader sql params () =
  let db, wh, s = Lazy.force plans_fixture in
  Executor.query db
    ~params:(("sessionVN", Value.Int (Twovnl.Session.vn s)) :: params)
    (Rewrite.reader_select ~lookup:(Twovnl.lookup wh) (Vnl_sql.Parser.parse_select sql))

let prepared_reader sql params () =
  let _, wh, s = Lazy.force plans_fixture in
  Twovnl.Session.query ~params wh s sql

(* name, interpreted closure, prepared closure — used by both the Bechamel
   group and the BENCH_plans.json timing loop. *)
let plan_pairs =
  [
    ("analyst group-by (Example 4.1)", interpreted_reader analyst_query [],
     prepared_reader analyst_query []);
    ("point probe (full key bound)", interpreted_reader point_probe_query point_probe_params,
     prepared_reader point_probe_query point_probe_params);
    ("drill-down group-by (:city)", interpreted_reader drill_down_query drill_down_params,
     prepared_reader drill_down_query drill_down_params);
  ]

let bench_plan_pairs =
  List.concat_map
    (fun (name, interp, prep) ->
      [
        Test.make ~name:(name ^ " [interpreted]") (Staged.stage interp);
        Test.make ~name:(name ^ " [prepared]") (Staged.stage prep);
      ])
    plan_pairs

(* Wall-clock ns/run with adaptive iteration counts; the warm-up calls also
   populate the plan cache, so the prepared numbers measure steady state.
   [min_time] is the sampling window per measurement — the smoke run
   shrinks it so @bench-smoke still emits a (rough) BENCH_plans.json. *)
let ns_per_run ?(min_time = 0.2) f =
  ignore (f ());
  ignore (f ());
  let rec go iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    let dt = Sys.time () -. t0 in
    if dt < min_time && iters < 8_388_608 then go (iters * 4)
    else dt *. 1e9 /. float_of_int iters
  in
  go 64

let write_plans_json results =
  let oc = open_out "BENCH_plans.json" in
  Printf.fprintf oc "{\n  \"description\": \"prepared (compiled plan cache) vs parse+rewrite+interpret on the 2VNL reader path; ns per statement\",\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, interp_ns, prep_ns) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"interpreted_ns\": %.0f, \"prepared_ns\": %.0f, \"speedup\": %.2f}%s\n"
        name interp_ns prep_ns (interp_ns /. prep_ns)
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n  \"phases\": %s\n}\n" (Vnl_obs.Obs.phases_json ());
  close_out oc

let run_plans_json ?(smoke = false) () =
  Vnl_util.Ascii_table.section "PLANS  prepared statements vs parse+rewrite+interpret";
  (* The timing loops run with observability off — a reader statement is
     hundreds of ns, so even one Sys.time pair per call would distort the
     committed numbers.  The phases come from a separate instrumented pass
     below. *)
  Vnl_obs.Obs.enabled := false;
  let min_time = if smoke then 0.005 else 0.2 in
  let results =
    List.map
      (fun (name, interp, prep) -> (name, ns_per_run ~min_time interp, ns_per_run ~min_time prep))
      plan_pairs
  in
  (* Instrumented pass for the "phases" section: the same statements with
     spans on, outside the timed region. *)
  Vnl_obs.Obs.enabled := true;
  Vnl_obs.Obs.reset ();
  List.iter
    (fun (_, interp, prep) ->
      for _ = 1 to 100 do
        ignore (interp ());
        ignore (prep ())
      done)
    plan_pairs;
  Vnl_obs.Obs.enabled := false;
  Vnl_util.Ascii_table.print
    ~header:[ "statement"; "interpreted ns"; "prepared ns"; "speedup" ]
    (List.map
       (fun (name, i, p) ->
         [ name; Printf.sprintf "%.0f" i; Printf.sprintf "%.0f" p;
           Printf.sprintf "%.1fx" (i /. p) ])
       results);
  write_plans_json results;
  (* The session statements above go through Twovnl's per-statement reader
     plans; the SQL-level LRU cache shows up on the query_string path. *)
  let s = Prepared.stats (Lazy.force group_by_db) in
  Printf.printf
    "-> query_string plan cache: %d hits / %d misses / %d invalidations;\n\
    \   results written to BENCH_plans.json.  Compilation removes the\n\
    \   per-statement parse, rewrite, and tree-walk cost without touching\n\
    \   physical I/O.\n"
    s.Prepared.hits s.Prepared.misses s.Prepared.invalidations

let tests =
  Test.make_grouped ~name:"vnl"
    ([
       bench_extract_current;
       bench_extract_pre;
       bench_extract_by_n;
       bench_rewrite;
       bench_parse_and_rewrite;
       bench_maintenance_update;
       bench_bptree_probe;
       bench_pool_fetch;
       bench_group_by_query;
     ]
    @ bench_plan_pairs)

(* One call per workload: the @bench-smoke alias uses this to prove every
   benchmark still runs without paying for statistical sampling. *)
let smoke () =
  Vnl_util.Ascii_table.section "MICRO  smoke run (one iteration per benchmark)";
  let thunks : (string * (unit -> unit)) list =
    [
      ("reader extract (current)", fun () -> ignore (extract_current ()));
      ("reader extract (pre-update)", fun () -> ignore (extract_pre ()));
      ("reader query rewrite", fun () -> ignore (rewrite_only ()));
      ("parse + rewrite + print", fun () -> ignore (parse_and_rewrite ()));
      ("maintenance update", fun () -> maintenance_update ());
      ("B+-tree key probe", fun () -> ignore (bptree_probe ()));
      ("version-pool fetch", fun () -> ignore (pool_fetch ()));
      ("group-by query", fun () -> ignore (group_by_query ()));
    ]
    @ List.map (fun n -> (Printf.sprintf "nVNL extract (n=%d)" n,
                          let f = extract_for_n n in fun () -> ignore (f ())))
        [ 2; 3; 4; 6 ]
    @ List.concat_map
        (fun (name, interp, prep) ->
          [
            (name ^ " [interpreted]", fun () -> ignore (interp ()));
            (name ^ " [prepared]", fun () -> ignore (prep ()));
          ])
        plan_pairs
  in
  List.iter
    (fun (name, f) ->
      f ();
      Printf.printf "  ok  %s\n" name)
    thunks;
  print_endline "-> all microbenchmark workloads executed once.";
  (* Short sampling windows: the smoke run still records BENCH_plans.json
     (with its registry-sourced phases) for the bench-compare CI gate. *)
  run_plans_json ~smoke:true ()

let run ?(smoke_only = false) () =
  if smoke_only then smoke ()
  else begin
    Vnl_util.Ascii_table.section "MICRO  CPU cost of the 2VNL hot paths (Bechamel)";
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (x :: _) -> Printf.sprintf "%.1f" x
          | _ -> "?"
        in
        rows := [ name; ns ] :: !rows)
      results;
    Vnl_util.Ascii_table.print ~header:[ "benchmark"; "ns/run" ]
      (List.sort compare !rows);
    print_endline
      "-> per-tuple extraction and decision-table steps are tens to hundreds of\n\
      \   nanoseconds: the run-time overhead 2VNL adds to reads is small (§6).";
    run_plans_json ()
  end
