(* Multiple summary tables maintained in one transaction.

   Run with:  dune exec examples/multi_view.exe

   Warehouses materialize several views over the same source (§1: "a
   warehouse may contain many materialized views").  Because one 2VNL
   maintenance transaction refreshes all of them and readers are
   serializable with it, a session sees the views *mutually* consistent:
   the product-line roll-up always agrees with the daily table, even while
   a refresh is running. *)

module Value = Vnl_relation.Value
module Executor = Vnl_query.Executor
module Twovnl = Vnl_core.Twovnl
module View_def = Vnl_warehouse.View_def
module Warehouse = Vnl_warehouse.Warehouse
module Summary = Vnl_warehouse.Summary
module Sales_gen = Vnl_workload.Sales_gen
module Xorshift = Vnl_util.Xorshift

(* A roll-up of DailySales: totals per product line, all cities and days. *)
let product_totals =
  View_def.make ~name:"ProductTotals" ~source:Sales_gen.sales_schema
    ~group_by:[ "product_line" ]
    ~aggregates:[ ("total_sales", View_def.Sum "amount") ]
    ()

let grand_total query table =
  match
    (query (Printf.sprintf "SELECT SUM(total_sales) FROM %s" table)).Executor.rows
  with
  | [ [ Value.Int n ] ] -> n
  | _ -> 0

let () =
  let rng = Xorshift.create 99 in
  let wh =
    Warehouse.create ~pool_capacity:256 [ Sales_gen.daily_sales_view (); product_totals ]
  in
  (* The two views summarize the same source stream: feed both queues. *)
  let feed changes =
    Warehouse.queue_changes wh ~view:"DailySales" changes;
    Warehouse.queue_changes wh ~view:"ProductTotals" changes
  in
  feed (Sales_gen.initial_load rng ~days:4 ~sales_per_day:150);
  ignore (Warehouse.refresh wh);

  let session = Warehouse.begin_session wh in
  let q sql = Warehouse.query wh session sql in
  Printf.printf "Session at version %d:\n" (Twovnl.Session.vn (session));
  Printf.printf "  grand total via DailySales:    %d\n" (grand_total q "DailySales");
  Printf.printf "  grand total via ProductTotals: %d\n\n" (grand_total q "ProductTotals");

  (* A maintenance transaction refreshes both views; check cross-view
     consistency mid-transaction and after commit. *)
  let txn = Twovnl.Txn.begin_ (Warehouse.vnl wh) in
  let src = Warehouse.source wh "DailySales" in
  let batch = Sales_gen.gen_batch rng src ~day:5 ~inserts:300 ~updates:60 ~deletes:30 in
  Warehouse.queue_changes wh ~view:"DailySales" batch;
  Warehouse.queue_changes wh ~view:"ProductTotals" batch;
  ignore
    (Summary.apply_batch txn (Warehouse.view wh "DailySales")
       (Warehouse.take_pending wh ~view:"DailySales"));
  Printf.printf "Mid-transaction: DailySales refreshed, ProductTotals not yet.\n";
  let daily_mid = grand_total q "DailySales" in
  let rollup_mid = grand_total q "ProductTotals" in
  Printf.printf "  session still sees DailySales=%d ProductTotals=%d -> consistent: %b\n\n"
    daily_mid rollup_mid (daily_mid = rollup_mid);
  ignore
    (Summary.apply_batch txn (Warehouse.view wh "ProductTotals")
       (Warehouse.take_pending wh ~view:"ProductTotals"));
  Twovnl.Txn.commit txn;

  Printf.printf "After commit (currentVN = %d):\n" (Twovnl.current_vn (Warehouse.vnl wh));
  let daily_old = grand_total q "DailySales" in
  Printf.printf "  old session still: DailySales=%d ProductTotals=%d\n" daily_old
    (grand_total q "ProductTotals");
  let fresh = Warehouse.begin_session wh in
  let qf sql = Warehouse.query wh fresh sql in
  let daily_new = grand_total qf "DailySales" in
  let rollup_new = grand_total qf "ProductTotals" in
  Printf.printf "  new session:       DailySales=%d ProductTotals=%d -> consistent: %b\n"
    daily_new rollup_new (daily_new = rollup_new);
  Printf.printf "\nBoth views moved atomically from version %d to %d; no reader ever saw\n"
    (Twovnl.Session.vn session) (Twovnl.Session.vn fresh);
  Printf.printf "one view refreshed and the other not.\n"
