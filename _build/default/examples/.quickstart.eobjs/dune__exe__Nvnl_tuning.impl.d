examples/nvnl_tuning.ml: List Printf Vnl_core Vnl_util Vnl_workload
