examples/quickstart.mli:
