examples/nvnl_tuning.mli:
