examples/fixtures_schema.ml: Vnl_relation
