examples/round_the_clock.mli:
