examples/quickstart.ml: Fixtures_schema Format Printf Vnl_core Vnl_query Vnl_relation
