examples/multi_view.mli:
