examples/analyst_drilldown.mli:
