examples/round_the_clock.ml: Printf Vnl_util Vnl_workload
