examples/analyst_drilldown.ml: List Printf Vnl_core Vnl_query Vnl_relation Vnl_sql Vnl_util Vnl_warehouse Vnl_workload
