examples/multi_view.ml: Printf Vnl_core Vnl_query Vnl_relation Vnl_util Vnl_warehouse Vnl_workload
