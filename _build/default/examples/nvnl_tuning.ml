(* Tuning n for nVNL (§5): pick the number of versions so that sessions of
   the expected length never expire, then validate by simulation.

   Run with:  dune exec examples/nvnl_tuning.exe *)

module Expiry = Vnl_core.Expiry
module Scenario = Vnl_workload.Scenario
module Ascii_table = Vnl_util.Ascii_table

let () =
  let gap = 60 and txn_len = 23 * 60 in
  Printf.printf
    "Maintenance pattern: one %d-minute transaction per day, %d-minute gap.\n\n"
    txn_len gap;

  print_endline "Guaranteed no-expiry session length by n (§5: (n-1)(i+m) - m):";
  Ascii_table.print ~header:[ "n"; "guaranteed session minutes"; "hours" ]
    (List.map
       (fun n ->
         let bound = Expiry.never_expire_bound ~n ~gap ~txn_len in
         [ string_of_int n; string_of_int bound; Printf.sprintf "%.1f" (float_of_int bound /. 60.) ])
       [ 2; 3; 4; 5 ]);

  print_newline ();
  print_endline "Smallest n for a target session length:";
  Ascii_table.print ~header:[ "session minutes"; "n needed" ]
    (List.map
       (fun len ->
         [ string_of_int len; string_of_int (Expiry.versions_needed ~session_len:len ~gap ~txn_len) ])
       [ 30; 60; 100; 300; 1500; 3000 ]);

  (* Validate by simulation: 100-minute sessions under the daily pattern
     need n = 3 by the formula; run both and compare expirations. *)
  print_newline ();
  print_endline "Simulation check (100-minute sessions, 3 days):";
  let cfg = { Scenario.default_config with Scenario.days = 3; session_len = 100 } in
  Ascii_table.print ~header:[ "algorithm"; "sessions"; "expired" ]
    (List.map
       (fun n ->
         let r = Scenario.run cfg (Scenario.Online n) in
         [
           Printf.sprintf "%dVNL" n;
           string_of_int r.Scenario.sessions_started;
           string_of_int r.Scenario.sessions_expired;
         ])
       [ 2; 3 ])
