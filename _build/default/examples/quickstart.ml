(* Quickstart: a DailySales warehouse maintained on-line under 2VNL.

   Run with:  dune exec examples/quickstart.exe

   The example walks the paper's core scenario end to end: register a
   summary table, load it, open an analyst session, run a maintenance
   transaction concurrently, and observe that the session's answers never
   change until it opts into the new version. *)

module Value = Vnl_relation.Value
module Database = Vnl_query.Database
module Executor = Vnl_query.Executor
module Twovnl = Vnl_core.Twovnl
module Rewrite = Vnl_core.Rewrite

let banner title = Printf.printf "\n== %s ==\n" title

let show result = Format.printf "%a\n" Executor.pp_result result

let () =
  banner "1. Create the warehouse and register DailySales under 2VNL";
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:"DailySales" Fixtures_schema.daily_sales);
  Twovnl.load_initial wh "DailySales"
    [
      Fixtures_schema.row "San Jose" "CA" "golf equip" 10 14 96 10000;
      Fixtures_schema.row "San Jose" "CA" "golf equip" 10 15 96 1500;
      Fixtures_schema.row "Berkeley" "CA" "racquetball" 10 14 96 12000;
      Fixtures_schema.row "Novato" "CA" "rollerblades" 10 13 96 8000;
    ];
  Printf.printf "Loaded 4 tuples; currentVN = %d\n" (Twovnl.current_vn wh);

  banner "2. An analyst session sees a consistent snapshot";
  let session = Twovnl.Session.begin_ wh in
  let totals_sql = "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state" in
  Printf.printf "Query:     %s\nRewritten: %s\n" totals_sql
    (Rewrite.reader_sql ~lookup:(Twovnl.lookup wh) totals_sql);
  show (Twovnl.Session.query wh session totals_sql);

  banner "3. A maintenance transaction runs concurrently";
  let txn = Twovnl.Txn.begin_ wh in
  Printf.printf "maintenanceVN = %d (session still reads version %d)\n" (Twovnl.Txn.vn txn)
    (Twovnl.Session.vn session);
  ignore
    (Twovnl.Txn.sql txn
       "UPDATE DailySales SET total_sales = total_sales + 1000 WHERE city = 'San Jose'");
  ignore (Twovnl.Txn.sql txn "DELETE FROM DailySales WHERE city = 'Berkeley'");
  ignore
    (Twovnl.Txn.sql txn
       "INSERT INTO DailySales VALUES ('Fresno', 'CA', 'tennis', DATE '10/16/96', 700)");
  Printf.printf "The session's answer is unchanged while the transaction is active:\n";
  show (Twovnl.Session.query wh session totals_sql);

  banner "4. Commit: the session still reads its version (serializable)";
  Twovnl.Txn.commit txn;
  Printf.printf "currentVN is now %d; the session still sees version %d:\n"
    (Twovnl.current_vn wh) (Twovnl.Session.vn session);
  show (Twovnl.Session.query wh session totals_sql);

  banner "5. A new session sees the maintained warehouse";
  let fresh = Twovnl.Session.begin_ wh in
  show (Twovnl.Session.query wh fresh totals_sql);

  banner "6. Storage cost of the two versions (Figure 3)";
  let handle = Twovnl.handle_exn wh "DailySales" in
  let ext = Twovnl.ext handle in
  Printf.printf
    "base tuple: %d bytes; extended: %d bytes; overhead %d bytes (%.1f%%)\n"
    (Vnl_relation.Schema.width (Vnl_core.Schema_ext.base ext))
    (Vnl_relation.Schema.width (Vnl_core.Schema_ext.extended ext))
    (Vnl_core.Schema_ext.width_overhead ext)
    (100.0 *. Vnl_core.Schema_ext.overhead_ratio ext)
