(* Figure 1 vs Figure 2: a multi-day warehouse under the offline
   (maintain-at-night) policy and under 2VNL on-line maintenance.

   Run with:  dune exec examples/round_the_clock.exe *)

module Scenario = Vnl_workload.Scenario
module Ascii_table = Vnl_util.Ascii_table

let report_row r =
  [
    Scenario.mode_name r.Scenario.mode;
    string_of_int r.Scenario.sessions_started;
    string_of_int r.Scenario.sessions_completed;
    string_of_int r.Scenario.sessions_rejected;
    string_of_int r.Scenario.sessions_expired;
    string_of_int r.Scenario.inconsistent_pairs;
    Ascii_table.fmt_pct (Scenario.availability r);
    string_of_bool r.Scenario.view_matches_source;
  ]

let () =
  (* The same daily maintenance demand, two operating policies.  The
     offline policy uses a classic night window (22:00, 6 hours); the
     on-line policy runs the paper's 9:00-8:00 long transaction. *)
  let night =
    {
      Scenario.default_config with
      Scenario.days = 3;
      maintenance_start = 22 * 60;
      maintenance_len = 6 * 60;
    }
  in
  let online = { Scenario.default_config with Scenario.days = 3 } in

  let offline_report = Scenario.run night Scenario.Offline in
  let online_report = Scenario.run online (Scenario.Online 2) in
  let dirty_report = Scenario.run online Scenario.Dirty in

  print_endline "Offline nightly maintenance (Figure 1):";
  print_endline (Scenario.render_timeline offline_report);
  print_newline ();
  print_endline "2VNL on-line maintenance (Figure 2):";
  print_endline (Scenario.render_timeline online_report);
  print_newline ();
  Ascii_table.print
    ~header:
      [ "policy"; "sessions"; "completed"; "rejected"; "expired"; "inconsistent";
        "availability"; "view ok" ]
    [ report_row offline_report; report_row online_report; report_row dirty_report ];
  Printf.printf
    "\nNote: the offline policy must fit maintenance in the night window, capping\n\
     view count/size (the paper's second problem); 2VNL runs a 23-hour maintenance\n\
     transaction with the warehouse open throughout.\n"
