(* The §2 motivation, made concrete: an analyst drills down into city sales
   while a large maintenance transaction reshapes the warehouse.

   Run with:  dune exec examples/analyst_drilldown.exe

   Under 2VNL the drill-down always adds up to the overview; with
   read-uncommitted access (what you would get by simply ignoring write
   locks without versioning) the same pair of queries tears. *)

module Value = Vnl_relation.Value
module Executor = Vnl_query.Executor
module Twovnl = Vnl_core.Twovnl
module Warehouse = Vnl_warehouse.Warehouse
module Summary = Vnl_warehouse.Summary
module Sales_gen = Vnl_workload.Sales_gen
module Xorshift = Vnl_util.Xorshift

let city = "San Jose"

let total_of rows =
  List.fold_left
    (fun acc row -> match row with [ Value.Int n ] -> acc + n | _ -> acc)
    0 rows

let overview query =
  total_of
    (query (Printf.sprintf "SELECT SUM(total_sales) FROM DailySales WHERE city = '%s'" city))
      .Executor.rows

let drilldown query =
  let rows =
    (query
       (Printf.sprintf
          "SELECT product_line, SUM(total_sales) FROM DailySales WHERE city = '%s' \
           GROUP BY product_line ORDER BY product_line"
          city))
      .Executor.rows
  in
  List.map
    (function
      | [ Value.Str pl; Value.Int n ] -> (pl, n)
      | _ -> ("?", 0))
    rows

let () =
  let rng = Xorshift.create 2024 in
  let wh = Warehouse.create ~pool_capacity:256 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:5 ~sales_per_day:200);
  ignore (Warehouse.refresh wh);

  (* The analyst begins a session, then maintenance starts applying a large
     day's batch in chunks; between the analyst's two queries, thousands of
     updates land. *)
  let session = Warehouse.begin_session wh in
  let vnl = Warehouse.vnl wh in
  let txn = Twovnl.Txn.begin_ vnl in

  let consistent_query sql = Warehouse.query wh session sql in
  let dirty_query sql =
    (* Read-uncommitted: always look at the latest (possibly mid-transaction)
       version. *)
    let vn = Twovnl.current_vn vnl + 1 in
    Executor.query (Warehouse.database wh)
      ~params:[ ("sessionVN", Value.Int vn) ]
      (Vnl_core.Rewrite.reader_select ~lookup:(Twovnl.lookup vnl)
         (Vnl_sql.Parser.parse_select sql))
  in

  Printf.printf "Analyst asks for the %s overview (session version %d):\n" city
    (Twovnl.Session.vn session);
  let total_before = overview consistent_query in
  let dirty_before = overview dirty_query in
  Printf.printf "  2VNL total:            %d\n" total_before;
  Printf.printf "  read-uncommitted total: %d\n\n" dirty_before;

  Printf.printf "...maintenance applies half of the day's batch...\n\n";
  let src = Warehouse.source wh "DailySales" in
  let batch = Sales_gen.gen_batch rng src ~day:6 ~inserts:400 ~updates:120 ~deletes:40 in
  Warehouse.queue_changes wh ~view:"DailySales" batch;
  let pending = Warehouse.take_pending wh ~view:"DailySales" in
  let half = List.filteri (fun i _ -> i < List.length pending / 2) pending in
  let rest = List.filteri (fun i _ -> i >= List.length pending / 2) pending in
  ignore (Summary.apply_batch txn (Warehouse.view wh "DailySales") half);

  Printf.printf "Analyst drills down into product lines:\n";
  let drill = drilldown consistent_query in
  List.iter (fun (pl, n) -> Printf.printf "  %-14s %8d\n" pl n) drill;
  let drill_total = List.fold_left (fun acc (_, n) -> acc + n) 0 drill in
  Printf.printf "  %-14s %8d  (overview said %d)\n" "SUM" drill_total total_before;
  Printf.printf "  consistent? %b\n\n" (drill_total = total_before);

  let dirty_drill = drilldown dirty_query in
  let dirty_total = List.fold_left (fun acc (_, n) -> acc + n) 0 dirty_drill in
  Printf.printf "The same drill-down under read-uncommitted sums to %d\n" dirty_total;
  Printf.printf "  vs. its own earlier overview %d -- consistent? %b\n\n" dirty_before
    (dirty_total = dirty_before);

  ignore (Summary.apply_batch txn (Warehouse.view wh "DailySales") rest);
  Twovnl.Txn.commit txn;
  Printf.printf "Maintenance committed (currentVN = %d).\n" (Twovnl.current_vn vnl);
  Printf.printf "The analyst's session still answers with its original version: %d\n"
    (overview consistent_query);
  let fresh = Warehouse.begin_session wh in
  Printf.printf "A new session sees the maintained warehouse:            %d\n"
    (overview (Warehouse.query wh fresh))
