(* Shared example schema: the paper's DailySales relation (Example 2.1). *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple

let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let row city state pl m d y sales =
  Tuple.make daily_sales
    [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy m d y; Value.Int sales ]
