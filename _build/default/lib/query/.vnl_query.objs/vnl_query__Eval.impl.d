lib/query/eval.ml: Hashtbl List Printf String Vnl_relation Vnl_sql
