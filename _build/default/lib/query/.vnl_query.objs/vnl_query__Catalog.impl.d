lib/query/catalog.ml: Buffer List Printf String Vnl_relation
