lib/query/executor.ml: Array Database Eval Format Hashtbl List Map Option Printf String Table Vnl_relation Vnl_sql Vnl_util
