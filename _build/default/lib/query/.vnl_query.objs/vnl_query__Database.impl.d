lib/query/database.ml: Buffer Bytes Catalog Hashtbl List Printf String Table Vnl_storage
