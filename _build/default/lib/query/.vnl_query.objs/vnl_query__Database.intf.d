lib/query/database.mli: Table Vnl_relation Vnl_storage
