lib/query/dml.mli: Database Eval Vnl_relation Vnl_sql Vnl_storage
