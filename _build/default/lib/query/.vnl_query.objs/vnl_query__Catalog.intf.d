lib/query/catalog.mli: Vnl_relation
