lib/query/table.mli: Vnl_relation Vnl_storage
