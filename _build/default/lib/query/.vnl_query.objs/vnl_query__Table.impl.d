lib/query/table.ml: List Option Printf Vnl_index Vnl_relation Vnl_storage
