lib/query/executor.mli: Database Format Vnl_relation Vnl_sql
