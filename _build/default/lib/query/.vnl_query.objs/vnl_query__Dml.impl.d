lib/query/dml.ml: Array Database Eval List Printf Table Vnl_relation Vnl_sql
