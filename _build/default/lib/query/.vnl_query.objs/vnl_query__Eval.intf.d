lib/query/eval.mli: Vnl_relation Vnl_sql
