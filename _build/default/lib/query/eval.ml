module Value = Vnl_relation.Value
module Ast = Vnl_sql.Ast

exception Eval_error of string

type env = {
  resolve : string option -> string -> Value.t;
  params : (string * Value.t) list;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let no_columns q name =
  let q = match q with Some q -> q ^ "." | None -> "" in
  fail "column %s%s not available in this context" q name

(* Three-valued comparison: NULL operands yield NULL. *)
let compare_op op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    let c = Value.compare a b in
    let holds =
      match op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.And | Ast.Or -> assert false
    in
    Value.Bool holds

(* Kleene three-valued AND/OR. *)
let and3 a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> fail "AND applied to non-boolean"

let or3 a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> fail "OR applied to non-boolean"

let not3 = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | _ -> fail "NOT applied to non-boolean"

(* SQL LIKE: % matches any run, _ any single character. *)
let like_match pattern text =
  let np = String.length pattern and nt = String.length text in
  (* Memoized recursion over (pattern index, text index). *)
  let memo = Hashtbl.create 16 in
  let rec go pi ti =
    match Hashtbl.find_opt memo (pi, ti) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then ti = nt
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) ti || (ti < nt && go pi (ti + 1))
          | '_' -> ti < nt && go (pi + 1) (ti + 1)
          | c -> ti < nt && text.[ti] = c && go (pi + 1) (ti + 1)
      in
      Hashtbl.add memo (pi, ti) r;
      r
  in
  go 0 0

let rec eval env (e : Ast.expr) =
  match e with
  | Ast.Lit v -> v
  | Ast.Col (q, name) -> env.resolve q name
  | Ast.Param p -> (
    match List.assoc_opt p env.params with
    | Some v -> v
    | None -> fail "unbound parameter :%s" p)
  | Ast.Binop (Ast.And, a, b) -> and3 (eval env a) (eval env b)
  | Ast.Binop (Ast.Or, a, b) -> or3 (eval env a) (eval env b)
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) ->
    compare_op op (eval env a) (eval env b)
  | Ast.Binop (Ast.Add, a, b) -> Value.add (eval env a) (eval env b)
  | Ast.Binop (Ast.Sub, a, b) -> Value.sub (eval env a) (eval env b)
  | Ast.Binop (Ast.Mul, a, b) -> Value.mul (eval env a) (eval env b)
  | Ast.Binop (Ast.Div, a, b) -> (
    let va = eval env a and vb = eval env b in
    try Value.div va vb with Division_by_zero -> fail "division by zero")
  | Ast.Unop (Ast.Not, e) -> not3 (eval env e)
  | Ast.Unop (Ast.Neg, e) -> Value.neg (eval env e)
  | Ast.Case (arms, default) ->
    let rec arm = function
      | [] -> ( match default with Some d -> eval env d | None -> Value.Null)
      | (cond, value) :: rest ->
        if truthy_value (eval env cond) then eval env value else arm rest
    in
    arm arms
  | Ast.Agg _ -> fail "aggregate used outside of a grouped query"
  | Ast.Is_null e -> Value.Bool (Value.is_null (eval env e))
  | Ast.Is_not_null e -> Value.Bool (not (Value.is_null (eval env e)))
  | Ast.In (e, candidates) ->
    (* SQL semantics: TRUE on a match; otherwise NULL if the subject or any
       candidate was NULL, else FALSE. *)
    let subject = eval env e in
    if Value.is_null subject then Value.Null
    else
      let rec scan saw_null = function
        | [] -> if saw_null then Value.Null else Value.Bool false
        | cand :: rest ->
          let v = eval env cand in
          if Value.is_null v then scan true rest
          else if Value.compare subject v = 0 then Value.Bool true
          else scan saw_null rest
      in
      scan false candidates
  | Ast.Between (e, lo, hi) ->
    and3
      (compare_op Ast.Ge (eval env e) (eval env lo))
      (compare_op Ast.Le (eval env e) (eval env hi))
  | Ast.Like (e, pattern) -> (
    match eval env e with
    | Value.Null -> Value.Null
    | Value.Str s -> Value.Bool (like_match pattern s)
    | v -> fail "LIKE applied to non-string %s" (Value.to_string v))

and truthy_value = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> fail "expected boolean predicate, got %s" (Value.to_string v)

let truthy = truthy_value

let eval_pred env e = truthy (eval env e)
