module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Ast = Vnl_sql.Ast

exception Dml_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Dml_error s)) fmt

type outcome = { matched : int; changed : int }

let env_for_tuple ?(params = []) schema tuple =
  let resolve q name =
    ignore q;
    match Schema.index_of_opt schema name with
    | Some i -> Tuple.get tuple i
    | None -> raise (Eval.Eval_error (Printf.sprintf "unknown column %s" name))
  in
  { Eval.resolve; params }

let select_rids db ?(params = []) ~table where =
  let tbl = Database.table_exn db table in
  let schema = Table.schema tbl in
  let acc = ref [] in
  Table.scan tbl (fun rid tuple ->
      let keep =
        match where with
        | None -> true
        | Some pred -> Eval.eval_pred (env_for_tuple ~params schema tuple) pred
      in
      if keep then acc := rid :: !acc);
  List.rev !acc

let insert db ?(params = []) ~table ~columns rows =
  let tbl = Database.table_exn db table in
  let schema = Table.schema tbl in
  let env = { Eval.resolve = Eval.no_columns; params } in
  let build row_exprs =
    match columns with
    | None ->
      if List.length row_exprs <> Schema.arity schema then
        fail "INSERT into %s: expected %d values, got %d" table (Schema.arity schema)
          (List.length row_exprs);
      Tuple.make schema (List.map (Eval.eval env) row_exprs)
    | Some cols ->
      if List.length cols <> List.length row_exprs then
        fail "INSERT into %s: %d columns but %d values" table (List.length cols)
          (List.length row_exprs);
      let assignments =
        List.map2 (fun col e -> (Schema.index_of schema col, Eval.eval env e)) cols row_exprs
      in
      let values =
        Array.init (Schema.arity schema) (fun i ->
            match List.assoc_opt i assignments with Some v -> v | None -> Value.Null)
      in
      Tuple.of_array schema values
  in
  let count = ref 0 in
  List.iter
    (fun row_exprs ->
      ignore (Table.insert tbl (build row_exprs));
      incr count)
    rows;
  { matched = !count; changed = !count }

let update db ?(params = []) ~table ~sets where =
  let tbl = Database.table_exn db table in
  let schema = Table.schema tbl in
  let assignments =
    List.map
      (fun (col, e) ->
        match Schema.index_of_opt schema col with
        | Some i -> (i, e)
        | None -> fail "UPDATE %s: unknown column %s" table col)
      sets
  in
  let rids = select_rids db ~params ~table where in
  let changed = ref 0 in
  List.iter
    (fun rid ->
      match Table.get tbl rid with
      | None -> ()  (* Deleted since the cursor was opened. *)
      | Some old ->
        let env = env_for_tuple ~params schema old in
        let updates = List.map (fun (i, e) -> (i, Eval.eval env e)) assignments in
        Table.update_in_place tbl rid (Tuple.set_many old updates);
        incr changed)
    rids;
  { matched = List.length rids; changed = !changed }

let delete db ?(params = []) ~table where =
  let tbl = Database.table_exn db table in
  let rids = select_rids db ~params ~table where in
  let changed = ref 0 in
  List.iter
    (fun rid ->
      match Table.get tbl rid with
      | None -> ()
      | Some _ ->
        Table.delete tbl rid;
        incr changed)
    rids;
  { matched = List.length rids; changed = !changed }

let execute db ?(params = []) (stmt : Ast.statement) =
  match stmt with
  | Ast.Select _ -> fail "Dml.execute: SELECT belongs to Executor.query"
  | Ast.Insert { table; columns; rows } -> insert db ~params ~table ~columns rows
  | Ast.Update { table; sets; where } -> update db ~params ~table ~sets where
  | Ast.Delete { table; where } -> delete db ~params ~table where

let execute_string db ?params src = execute db ?params (Vnl_sql.Parser.parse src)
