(** INSERT / UPDATE / DELETE execution.

    Updates and deletes use the cursor approach of §4.2: matching rids are
    collected first, then each tuple is revisited and modified individually,
    which is exactly the shape the 2VNL maintenance rewrite needs for its
    per-tuple physical-operation decisions. *)

exception Dml_error of string

type outcome = {
  matched : int;  (** Tuples the statement's WHERE selected. *)
  changed : int;  (** Tuples physically inserted / updated / deleted. *)
}

val insert :
  Database.t ->
  ?params:(string * Vnl_relation.Value.t) list ->
  table:string ->
  columns:string list option ->
  Vnl_sql.Ast.expr list list ->
  outcome
(** Evaluate and insert the given rows.  Unnamed columns default to the
    schema order; named columns may omit attributes, which become NULL.
    Raises {!Table.Unique_violation} on key conflicts. *)

val update :
  Database.t ->
  ?params:(string * Vnl_relation.Value.t) list ->
  table:string ->
  sets:(string * Vnl_sql.Ast.expr) list ->
  Vnl_sql.Ast.expr option ->
  outcome
(** Set-oriented update: assignment right-hand sides see the {e old} tuple. *)

val delete :
  Database.t ->
  ?params:(string * Vnl_relation.Value.t) list ->
  table:string ->
  Vnl_sql.Ast.expr option ->
  outcome

val execute :
  Database.t ->
  ?params:(string * Vnl_relation.Value.t) list ->
  Vnl_sql.Ast.statement ->
  outcome
(** Dispatch a non-SELECT statement.  Raises {!Dml_error} on a SELECT. *)

val execute_string :
  Database.t -> ?params:(string * Vnl_relation.Value.t) list -> string -> outcome

val select_rids :
  Database.t ->
  ?params:(string * Vnl_relation.Value.t) list ->
  table:string ->
  Vnl_sql.Ast.expr option ->
  Vnl_storage.Heap_file.rid list
(** The cursor primitive: rids of tuples currently matching [where], in scan
    order.  Callers then re-fetch each tuple before acting, so mutations
    during iteration are safe. *)

val env_for_tuple :
  ?params:(string * Vnl_relation.Value.t) list ->
  Vnl_relation.Schema.t ->
  Vnl_relation.Tuple.t ->
  Eval.env
(** Evaluation environment resolving unqualified columns against one
    tuple. *)
