module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value

type change = Insert of Tuple.t | Delete of Tuple.t | Update of Tuple.t * Tuple.t

type group_delta = {
  key : Value.t list;
  agg_delta : Value.t list;
  count_delta : int;
}

module Keymap = Map.Make (struct
  type t = Value.t list

  let compare a b =
    let rec loop xs ys =
      match (xs, ys) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: xs, y :: ys ->
        let c = Value.compare x y in
        if c <> 0 then c else loop xs ys
    in
    loop a b
end)

let net_group_deltas view changes =
  let acc = ref Keymap.empty and order = ref [] in
  let touch key f =
    let current =
      match Keymap.find_opt key !acc with
      | Some entry -> entry
      | None ->
        order := key :: !order;
        (View_def.zero_contribution view, 0)
    in
    acc := Keymap.add key (f current) !acc
  in
  let add_row sign row =
    let key = View_def.group_key view row in
    let contrib = View_def.contribution view row in
    touch key (fun (sums, count) ->
        let op = if sign > 0 then Value.add else Value.sub in
        (List.map2 op sums contrib, count + sign))
  in
  List.iter
    (fun change ->
      match change with
      | Insert row -> add_row 1 row
      | Delete row -> add_row (-1) row
      | Update (old_row, new_row) ->
        add_row (-1) old_row;
        add_row 1 new_row)
    changes;
  let is_zero v =
    match v with Value.Int 0 -> true | Value.Float 0.0 -> true | _ -> false
  in
  List.rev !order
  |> List.filter_map (fun key ->
         let sums, count = Keymap.find key !acc in
         if count = 0 && List.for_all is_zero sums then None
         else Some { key; agg_delta = sums; count_delta = count })

let pp_change ppf = function
  | Insert t -> Format.fprintf ppf "insert %s" (String.concat "," (Tuple.to_strings t))
  | Delete t -> Format.fprintf ppf "delete %s" (String.concat "," (Tuple.to_strings t))
  | Update (o, n) ->
    Format.fprintf ppf "update %s -> %s"
      (String.concat "," (Tuple.to_strings o))
      (String.concat "," (Tuple.to_strings n))

let change_count changes =
  List.fold_left
    (fun (i, d, u) c ->
      match c with
      | Insert _ -> (i + 1, d, u)
      | Delete _ -> (i, d + 1, u)
      | Update _ -> (i, d, u + 1))
    (0, 0, 0) changes
