(** Incremental maintenance of summary tables through a 2VNL maintenance
    transaction (§1-§2 context: propagate a batch of source changes to the
    warehouse views).

    For each net group delta: an absent group is inserted; a present group
    has its aggregates adjusted by the delta; a group whose support count
    drops to zero is logically deleted.  All tuple operations flow through
    the 2VNL decision tables, so readers stay consistent throughout. *)

type outcome = {
  groups_inserted : int;
  groups_updated : int;
  groups_deleted : int;
}

val apply_batch :
  Vnl_core.Twovnl.Txn.m -> View_def.t -> Delta.change list -> outcome
(** Fold the batch into net group deltas and apply them to the view's
    warehouse table (which must be registered under [View_def.name]).
    Raises [Invalid_argument] if a group with no support count would need
    deletion inference, or if a delta would drive an aggregate of an absent
    group (inconsistent source batch). *)

val pp_outcome : Format.formatter -> outcome -> unit
