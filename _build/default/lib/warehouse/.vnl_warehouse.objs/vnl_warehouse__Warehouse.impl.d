lib/warehouse/warehouse.ml: Delta List Printf Source Summary View_def Vnl_core Vnl_query
