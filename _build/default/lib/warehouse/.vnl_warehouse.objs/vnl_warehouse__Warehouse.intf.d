lib/warehouse/warehouse.mli: Delta Source Summary View_def Vnl_core Vnl_query Vnl_relation
