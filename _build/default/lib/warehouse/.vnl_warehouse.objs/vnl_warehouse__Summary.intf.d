lib/warehouse/summary.mli: Delta Format View_def Vnl_core
