lib/warehouse/summary.ml: Delta Format List View_def Vnl_core Vnl_relation
