lib/warehouse/view_def.mli: Vnl_relation
