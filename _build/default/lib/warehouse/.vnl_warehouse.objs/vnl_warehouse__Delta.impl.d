lib/warehouse/delta.ml: Format List Map String View_def Vnl_relation
