lib/warehouse/source.ml: Delta List View_def Vnl_relation
