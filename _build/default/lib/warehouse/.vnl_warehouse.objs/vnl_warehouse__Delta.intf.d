lib/warehouse/delta.mli: Format View_def Vnl_relation
