lib/warehouse/source.mli: Delta View_def Vnl_relation
