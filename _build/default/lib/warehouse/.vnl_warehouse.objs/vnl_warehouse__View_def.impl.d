lib/warehouse/view_def.ml: List Printf String Vnl_relation
