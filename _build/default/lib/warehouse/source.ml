module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value

type t = { schema : Schema.t; mutable rows : Tuple.t list }

let create schema = { schema; rows = [] }

let schema t = t.schema

let remove_one t row =
  let rec loop acc = function
    | [] -> invalid_arg "Source: delete/update of absent row"
    | r :: rest ->
      if Tuple.equal r row then List.rev_append acc rest else loop (r :: acc) rest
  in
  t.rows <- loop [] t.rows

let apply t changes =
  List.iter
    (fun change ->
      match change with
      | Delta.Insert row -> t.rows <- row :: t.rows
      | Delta.Delete row -> remove_one t row
      | Delta.Update (old_row, new_row) ->
        remove_one t old_row;
        t.rows <- new_row :: t.rows)
    changes

let rows t = List.rev t.rows

let row_count t = List.length t.rows

let compute_view t view =
  (* Reuse the batch aggregation over the whole base as a fresh load. *)
  let deltas = Delta.net_group_deltas view (List.map (fun r -> Delta.Insert r) (rows t)) in
  let target = View_def.target_schema view in
  List.filter_map
    (fun { Delta.key; agg_delta; count_delta } ->
      if View_def.has_count view && count_delta <= 0 then None
      else
        let aggs =
          if View_def.has_count view then
            (* The last aggregate is the hidden row_count; its delta over a
               fresh load is the group's support. *)
            let rec replace_last = function
              | [] -> []
              | [ _ ] -> [ Value.Int count_delta ]
              | x :: rest -> x :: replace_last rest
            in
            replace_last agg_delta
          else agg_delta
        in
        Some (Tuple.make target (key @ aggs)))
    deltas
