(** A simulated external data source.

    Holds the base relation the warehouse views summarize, applies change
    batches, and — crucially for testing — recomputes any view from scratch,
    giving the ground truth that incremental maintenance must match. *)

type t

val create : Vnl_relation.Schema.t -> t

val schema : t -> Vnl_relation.Schema.t

val apply : t -> Delta.change list -> unit
(** Apply changes to the base relation.  [Delete]/[Update] identify the old
    row by full-tuple equality; raises [Invalid_argument] when it is
    absent. *)

val rows : t -> Vnl_relation.Tuple.t list

val row_count : t -> int

val compute_view : t -> View_def.t -> Vnl_relation.Tuple.t list
(** Full recomputation of the view over the current base data, in
    first-group-seen order — the oracle for incremental maintenance. *)
