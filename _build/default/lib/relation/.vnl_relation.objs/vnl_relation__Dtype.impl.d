lib/relation/dtype.ml: Format
