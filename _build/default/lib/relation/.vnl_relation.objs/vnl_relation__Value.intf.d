lib/relation/value.mli: Dtype Format
