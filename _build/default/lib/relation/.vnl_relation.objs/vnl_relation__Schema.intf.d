lib/relation/schema.mli: Dtype Format
