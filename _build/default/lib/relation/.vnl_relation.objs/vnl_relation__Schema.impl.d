lib/relation/schema.ml: Array Dtype Format Hashtbl List Printf String
