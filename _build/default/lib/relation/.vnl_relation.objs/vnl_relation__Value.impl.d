lib/relation/value.ml: Buffer Bytes Dtype Float Format Hashtbl Int32 Int64 Printf Stdlib String
