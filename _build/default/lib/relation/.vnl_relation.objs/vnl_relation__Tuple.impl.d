lib/relation/tuple.ml: Array Bytes Dtype Format List Printf Schema Value
