lib/relation/dtype.mli: Format
