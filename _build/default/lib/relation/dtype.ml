type t = Int | Float | Str of int | Date | Bool

let width = function
  | Int -> 4
  | Float -> 8
  | Str n -> n
  | Date -> 4
  | Bool -> 1

let equal a b =
  match (a, b) with
  | Int, Int | Float, Float | Date, Date | Bool, Bool -> true
  | Str n, Str m -> n = m
  | (Int | Float | Str _ | Date | Bool), _ -> false

let pp ppf = function
  | Int -> Format.pp_print_string ppf "INT"
  | Float -> Format.pp_print_string ppf "FLOAT"
  | Str n -> Format.fprintf ppf "CHAR(%d)" n
  | Date -> Format.pp_print_string ppf "DATE"
  | Bool -> Format.pp_print_string ppf "BOOL"

let to_string t = Format.asprintf "%a" pp t
