(** Attribute values.

    Values carry their own constructor; typing against a schema is checked at
    tuple construction.  SQL NULL is a first-class value ([Null]); physical
    encoding represents it with an in-band sentinel so byte widths match the
    paper's Figure 3 layout. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** yyyymmdd encoding, e.g. [19961014]. *)
  | Bool of bool
  | Null

val is_null : t -> bool

val matches : Dtype.t -> t -> bool
(** [matches dt v] holds when [v] is [Null] or has constructor [dt] (strings
    also check the width bound). *)

val compare : t -> t -> int
(** Total order: [Null] sorts lowest; values of distinct types order by an
    arbitrary fixed type rank (queries never compare across types). *)

val equal : t -> t -> bool

val add : t -> t -> t
(** Numeric addition with SQL NULL propagation; [Int]+[Int] stays [Int]. *)

val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
val div : t -> t -> t
(** Division; integer division on two [Int]s.  Raises [Division_by_zero]. *)

val to_float : t -> float
(** Numeric coercion; 0 for [Null].  Raises [Invalid_argument] on
    non-numeric values. *)

val date_of_mdy : int -> int -> int -> t
(** [date_of_mdy m d y] builds a [Date]; two-digit years are interpreted in
    the 1900s as in the paper's examples. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering: dates as [mm/dd/yy], integers with thousands
    separators ("10,000"), NULL as [null]. *)

val to_string : t -> string

val encode : Dtype.t -> t -> bytes
(** Physical encoding at exactly [Dtype.width]; [Null] uses the type's
    sentinel.  Raises [Invalid_argument] when [v] does not match the type. *)

val decode : Dtype.t -> bytes -> int -> t
(** [decode dt buf off] reads a value of type [dt] at offset [off]. *)

val hash : t -> int
(** Hash consistent with [equal]; used by group-by hash tables. *)
