(** Attribute data types with fixed physical byte widths.

    Widths follow the paper's Figure 3 layout (integers and dates are 4
    bytes, strings are fixed-width CHAR(n)); the schema-extension storage
    overhead experiment depends on this arithmetic. *)

type t =
  | Int  (** 32-bit integer, 4 bytes. *)
  | Float  (** 64-bit float, 8 bytes. *)
  | Str of int  (** Fixed-width string CHAR(n), n bytes. *)
  | Date  (** Calendar date encoded as yyyymmdd, 4 bytes. *)
  | Bool  (** Boolean, 1 byte. *)

val width : t -> int
(** Physical width in bytes of a value of this type (nulls are encoded
    in-band with a sentinel, so width is unconditional). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** SQL-ish rendering: [INT], [FLOAT], [CHAR(n)], [DATE], [BOOL]. *)

val to_string : t -> string
