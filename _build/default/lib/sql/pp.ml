module Value = Vnl_relation.Value
open Ast

let binop_text = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let agg_text = function Sum -> "SUM" | Count -> "COUNT" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG"

(* Precedence levels for minimal parenthesization. *)
let level = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6

let lit ppf = function
  | Value.Str s ->
    let escaped = String.concat "''" (String.split_on_char '\'' s) in
    Format.fprintf ppf "'%s'" escaped
  | Value.Date d ->
    let y = d / 10000 and m = d / 100 mod 100 and day = d mod 100 in
    Format.fprintf ppf "DATE '%04d-%02d-%02d'" y m day
  | Value.Int n -> Format.fprintf ppf "%d" n
  | Value.Float f -> Format.fprintf ppf "%g" f
  | Value.Bool b -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")
  | Value.Null -> Format.pp_print_string ppf "NULL"

let rec pp_expr ctx ppf e =
  match e with
  | Lit v -> lit ppf v
  | Col (None, name) -> Format.pp_print_string ppf name
  | Col (Some q, name) -> Format.fprintf ppf "%s.%s" q name
  | Param p -> Format.fprintf ppf ":%s" p
  | Binop (op, a, b) ->
    let me = level op in
    let body ppf () =
      Format.fprintf ppf "%a %s %a" (pp_expr me) a (binop_text op) (pp_expr (me + 1)) b
    in
    if me < ctx then Format.fprintf ppf "(%a)" body () else body ppf ()
  | Unop (Not, e) -> Format.fprintf ppf "NOT %a" (pp_expr 3) e
  | Unop (Neg, e) -> Format.fprintf ppf "-%a" (pp_expr 7) e
  | Case (arms, default) ->
    Format.pp_print_string ppf "CASE";
    List.iter
      (fun (c, v) -> Format.fprintf ppf " WHEN %a THEN %a" (pp_expr 0) c (pp_expr 0) v)
      arms;
    Option.iter (fun d -> Format.fprintf ppf " ELSE %a" (pp_expr 0) d) default;
    Format.pp_print_string ppf " END"
  | Agg (a, None) -> Format.fprintf ppf "%s(*)" (agg_text a)
  | Agg (a, Some e) -> Format.fprintf ppf "%s(%a)" (agg_text a) (pp_expr 0) e
  | Is_null e -> Format.fprintf ppf "%a IS NULL" (pp_expr 4) e
  | Is_not_null e -> Format.fprintf ppf "%a IS NOT NULL" (pp_expr 4) e
  | In (e, es) ->
    Format.fprintf ppf "%a IN (%a)" (pp_expr 5) e
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_expr 0))
      es
  | Between (e, lo, hi) ->
    (* BETWEEN bounds stop at additive precedence, so AND is unambiguous. *)
    Format.fprintf ppf "%a BETWEEN %a AND %a" (pp_expr 5) e (pp_expr 5) lo (pp_expr 5) hi
  | Like (e, pat) ->
    let escaped = String.concat "''" (String.split_on_char '\'' pat) in
    Format.fprintf ppf "%a LIKE '%s'" (pp_expr 5) e escaped

let expr ppf e = pp_expr 0 ppf e

let comma_sep pp ppf xs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp ppf xs

let select_item ppf = function
  | Star -> Format.pp_print_string ppf "*"
  | Item (e, None) -> expr ppf e
  | Item (e, Some alias) -> Format.fprintf ppf "%a AS %s" expr e alias

let table_ref ppf = function
  | name, None -> Format.pp_print_string ppf name
  | name, Some alias -> Format.fprintf ppf "%s %s" name alias

let select ppf (s : select) =
  Format.fprintf ppf "SELECT %s%a FROM %a"
    (if s.distinct then "DISTINCT " else "")
    (comma_sep select_item) s.items (comma_sep table_ref) s.from;
  Option.iter (fun w -> Format.fprintf ppf " WHERE %a" expr w) s.where;
  (match s.group_by with
  | [] -> ()
  | gs -> Format.fprintf ppf " GROUP BY %a" (comma_sep expr) gs);
  Option.iter (fun h -> Format.fprintf ppf " HAVING %a" expr h) s.having;
  (match s.order_by with
  | [] -> ()
  | os ->
    let one ppf (e, dir) =
      Format.fprintf ppf "%a%s" expr e (match dir with Asc -> "" | Desc -> " DESC")
    in
    Format.fprintf ppf " ORDER BY %a" (comma_sep one) os);
  match s.limit with
  | None -> ()
  | Some (n, 0) -> Format.fprintf ppf " LIMIT %d" n
  | Some (n, m) -> Format.fprintf ppf " LIMIT %d OFFSET %d" n m

let statement ppf = function
  | Select s -> select ppf s
  | Insert { table; columns; rows } ->
    Format.fprintf ppf "INSERT INTO %s" table;
    Option.iter
      (fun cols -> Format.fprintf ppf " (%a)" (comma_sep Format.pp_print_string) cols)
      columns;
    let row ppf vs = Format.fprintf ppf "(%a)" (comma_sep expr) vs in
    Format.fprintf ppf " VALUES %a" (comma_sep row) rows
  | Update { table; sets; where } ->
    let assignment ppf (col, e) = Format.fprintf ppf "%s = %a" col expr e in
    Format.fprintf ppf "UPDATE %s SET %a" table (comma_sep assignment) sets;
    Option.iter (fun w -> Format.fprintf ppf " WHERE %a" expr w) where
  | Delete { table; where } ->
    Format.fprintf ppf "DELETE FROM %s" table;
    Option.iter (fun w -> Format.fprintf ppf " WHERE %a" expr w) where

let expr_to_string e = Format.asprintf "%a" expr e

let statement_to_string s = Format.asprintf "%a" statement s
