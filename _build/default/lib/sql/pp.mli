(** SQL pretty-printer.

    Renders ASTs back to SQL text so the query-rewrite layer can display
    rewritten statements exactly as the paper's Example 4.1 does.  Output
    round-trips through {!Parser.parse}. *)

val expr : Format.formatter -> Ast.expr -> unit

val statement : Format.formatter -> Ast.statement -> unit

val select : Format.formatter -> Ast.select -> unit

val expr_to_string : Ast.expr -> string

val statement_to_string : Ast.statement -> string
