(** Recursive-descent parser for the SQL subset. *)

exception Parse_error of string
(** Raised with a human-readable message on malformed input. *)

val parse : string -> Ast.statement
(** Parse a single statement (an optional trailing [;] is accepted).
    Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_select : string -> Ast.select
(** Parse and require a SELECT. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression; used by tests. *)

val parse_date : string -> Vnl_relation.Value.t
(** Parse a date literal body in [mm/dd/yy] or [yyyy-mm-dd] form. *)
