(** Hand-written SQL lexer. *)

type token =
  | IDENT of string  (** Identifier, original case preserved. *)
  | KEYWORD of string  (** Reserved word, upper-cased. *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** Single-quoted, with [''] escaping. *)
  | PARAM of string  (** [:name]. *)
  | SYMBOL of string  (** Punctuation and operators, e.g. ["<="], [","]. *)
  | EOF

exception Lex_error of string * int
(** Message and byte position. *)

val tokenize : string -> token list
(** Lex an entire statement; always ends with [EOF].
    Raises {!Lex_error} on malformed input. *)

val keywords : string list
(** The reserved words recognized as [KEYWORD]. *)

val pp_token : Format.formatter -> token -> unit
