(** Abstract syntax for the SQL subset.

    The subset covers what the paper's query-rewrite approach needs:
    single-block SELECT with aggregates, GROUP BY and CASE expressions
    (Example 4.1); INSERT/UPDATE/DELETE for maintenance statements
    (Examples 4.2-4.4); named parameters like [:sessionVN] for the version
    placeholders the rewrite introduces. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg

type agg = Sum | Count | Min | Max | Avg

type expr =
  | Lit of Vnl_relation.Value.t
  | Col of string option * string  (** Optional table qualifier, column name. *)
  | Param of string  (** Named parameter [:name]. *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Case of (expr * expr) list * expr option
      (** [CASE WHEN c1 THEN e1 ... \[ELSE e\] END]; missing ELSE is NULL. *)
  | Agg of agg * expr option  (** [None] only for COUNT star. *)
  | Is_null of expr
  | Is_not_null of expr
  | In of expr * expr list  (** [e IN (e1, ..., ek)]. *)
  | Between of expr * expr * expr  (** [e BETWEEN lo AND hi]. *)
  | Like of expr * string  (** [e LIKE 'pattern'] with [%] and [_]. *)

type select_item =
  | Star
  | Item of expr * string option  (** Expression with optional [AS] alias. *)

type order_dir = Asc | Desc

type select = {
  distinct : bool;
  items : select_item list;
  from : (string * string option) list;  (** Table name, optional alias. *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : (int * int) option;  (** [LIMIT n \[OFFSET m\]] as (n, m). *)
}

type statement =
  | Select of select
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }

val select_all : string -> select
(** [SELECT * FROM table]. *)

val has_aggregate : expr -> bool
(** Does the expression contain an [Agg] node? *)

val map_columns : (string option -> string -> expr) -> expr -> expr
(** [map_columns f e] replaces every [Col (q, name)] node by [f q name];
    this is the workhorse of the 2VNL reader rewrite, which substitutes CASE
    expressions for updatable attribute references. *)

val columns_of : expr -> (string option * string) list
(** All column references in the expression, left to right, with
    duplicates. *)

val conj : expr option -> expr -> expr
(** [conj where extra] is [extra] when [where] is [None], otherwise
    [where AND extra]; used to attach the rewrite's visibility predicate. *)

val equal_expr : expr -> expr -> bool
