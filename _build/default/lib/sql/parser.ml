module Value = Vnl_relation.Value
open Ast

exception Parse_error of string

type cursor = { mutable tokens : Lexer.token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek c = match c.tokens with [] -> Lexer.EOF | t :: _ -> t

let advance c = match c.tokens with [] -> () | _ :: rest -> c.tokens <- rest

let next c =
  let t = peek c in
  advance c;
  t

let describe t = Format.asprintf "%a" Lexer.pp_token t

let expect_symbol c s =
  match next c with
  | Lexer.SYMBOL x when x = s -> ()
  | t -> fail "expected %S, found %s" s (describe t)

let expect_keyword c k =
  match next c with
  | Lexer.KEYWORD x when x = k -> ()
  | t -> fail "expected %s, found %s" k (describe t)

let accept_symbol c s =
  match peek c with
  | Lexer.SYMBOL x when x = s ->
    advance c;
    true
  | _ -> false

let accept_keyword c k =
  match peek c with
  | Lexer.KEYWORD x when x = k ->
    advance c;
    true
  | _ -> false

let ident c =
  match next c with
  | Lexer.IDENT name -> name
  (* DATE doubles as a column name (the paper's DailySales has a "date"
     attribute); accept it wherever an identifier is required. *)
  | Lexer.KEYWORD "DATE" -> "date"
  | t -> fail "expected identifier, found %s" (describe t)

let parse_date body =
  let split sep s = String.split_on_char sep s in
  let as_ints parts = List.map int_of_string parts in
  match
    if String.contains body '/' then
      match as_ints (split '/' body) with
      | [ m; d; y ] -> Some (Value.date_of_mdy m d y)
      | _ -> None
    else
      match as_ints (split '-' body) with
      | [ y; m; d ] -> Some (Value.date_of_mdy m d y)
      | _ -> None
  with
  | Some v -> v
  | None | (exception Failure _) -> fail "malformed date literal %S" body

(* Expression grammar, lowest precedence first. *)
let rec expr c = or_expr c

and or_expr c =
  let rec loop left =
    if accept_keyword c "OR" then loop (Binop (Or, left, and_expr c)) else left
  in
  loop (and_expr c)

and and_expr c =
  let rec loop left =
    if accept_keyword c "AND" then loop (Binop (And, left, not_expr c)) else left
  in
  loop (not_expr c)

and not_expr c = if accept_keyword c "NOT" then Unop (Not, not_expr c) else comparison c

and comparison c =
  let left = additive c in
  let in_suffix left =
    expect_symbol c "(";
    let rec loop acc =
      let acc = additive c :: acc in
      if accept_symbol c "," then loop acc
      else begin
        expect_symbol c ")";
        List.rev acc
      end
    in
    In (left, loop [])
  in
  let between_suffix left =
    let lo = additive c in
    expect_keyword c "AND";
    let hi = additive c in
    Between (left, lo, hi)
  in
  let like_suffix left =
    match next c with
    | Lexer.STRING pat -> Like (left, pat)
    | t -> fail "expected pattern string after LIKE, found %s" (describe t)
  in
  match peek c with
  | Lexer.SYMBOL ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
    let op =
      match next c with
      | Lexer.SYMBOL "=" -> Eq
      | Lexer.SYMBOL "<>" -> Neq
      | Lexer.SYMBOL "<" -> Lt
      | Lexer.SYMBOL "<=" -> Le
      | Lexer.SYMBOL ">" -> Gt
      | Lexer.SYMBOL ">=" -> Ge
      | _ -> assert false
    in
    Binop (op, left, additive c)
  | Lexer.KEYWORD "IS" ->
    advance c;
    let negated = accept_keyword c "NOT" in
    expect_keyword c "NULL";
    if negated then Is_not_null left else Is_null left
  | Lexer.KEYWORD "IN" ->
    advance c;
    in_suffix left
  | Lexer.KEYWORD "BETWEEN" ->
    advance c;
    between_suffix left
  | Lexer.KEYWORD "LIKE" ->
    advance c;
    like_suffix left
  | Lexer.KEYWORD "NOT" ->
    (* e NOT IN / NOT BETWEEN / NOT LIKE. *)
    advance c;
    if accept_keyword c "IN" then Unop (Not, in_suffix left)
    else if accept_keyword c "BETWEEN" then Unop (Not, between_suffix left)
    else if accept_keyword c "LIKE" then Unop (Not, like_suffix left)
    else fail "expected IN, BETWEEN or LIKE after NOT"
  | _ -> left

and additive c =
  let rec loop left =
    if accept_symbol c "+" then loop (Binop (Add, left, multiplicative c))
    else if accept_symbol c "-" then loop (Binop (Sub, left, multiplicative c))
    else left
  in
  loop (multiplicative c)

and multiplicative c =
  let rec loop left =
    if accept_symbol c "*" then loop (Binop (Mul, left, unary c))
    else if accept_symbol c "/" then loop (Binop (Div, left, unary c))
    else left
  in
  loop (unary c)

and unary c = if accept_symbol c "-" then Unop (Neg, unary c) else primary c

and aggregate c agg =
  expect_symbol c "(";
  let arg =
    if accept_symbol c "*" then
      if agg = Count then None else fail "only COUNT accepts *"
    else Some (expr c)
  in
  expect_symbol c ")";
  Agg (agg, arg)

and primary c =
  match next c with
  | Lexer.INT n -> Lit (Value.Int n)
  | Lexer.FLOAT f -> Lit (Value.Float f)
  | Lexer.STRING s -> Lit (Value.Str s)
  | Lexer.PARAM p -> Param p
  | Lexer.KEYWORD "NULL" -> Lit Value.Null
  | Lexer.KEYWORD "TRUE" -> Lit (Value.Bool true)
  | Lexer.KEYWORD "FALSE" -> Lit (Value.Bool false)
  | Lexer.KEYWORD "DATE" -> (
    (* [DATE 'literal'] is a date constant; bare [date] is a column. *)
    match peek c with
    | Lexer.STRING body ->
      advance c;
      Lit (parse_date body)
    | _ -> Col (None, "date"))
  | Lexer.KEYWORD "SUM" -> aggregate c Sum
  | Lexer.KEYWORD "COUNT" -> aggregate c Count
  | Lexer.KEYWORD "MIN" -> aggregate c Min
  | Lexer.KEYWORD "MAX" -> aggregate c Max
  | Lexer.KEYWORD "AVG" -> aggregate c Avg
  | Lexer.KEYWORD "CASE" ->
    let rec arms acc =
      if accept_keyword c "WHEN" then begin
        let cond = expr c in
        expect_keyword c "THEN";
        let value = expr c in
        arms ((cond, value) :: acc)
      end
      else List.rev acc
    in
    let arms = arms [] in
    if arms = [] then fail "CASE requires at least one WHEN arm";
    let default = if accept_keyword c "ELSE" then Some (expr c) else None in
    expect_keyword c "END";
    Case (arms, default)
  | Lexer.SYMBOL "(" ->
    let e = expr c in
    expect_symbol c ")";
    e
  | Lexer.IDENT name ->
    if accept_symbol c "." then Col (Some name, ident c) else Col (None, name)
  | t -> fail "unexpected token %s in expression" (describe t)

let select_items c =
  let item () =
    if accept_symbol c "*" then Star
    else
      let e = expr c in
      let alias =
        if accept_keyword c "AS" then Some (ident c)
        else match peek c with Lexer.IDENT name -> advance c; Some name | _ -> None
      in
      Item (e, alias)
  in
  let rec loop acc = if accept_symbol c "," then loop (item () :: acc) else List.rev acc in
  loop [ item () ]

let from_clause c =
  let table_ref () =
    let name = ident c in
    let alias =
      if accept_keyword c "AS" then Some (ident c)
      else match peek c with Lexer.IDENT a -> advance c; Some a | _ -> None
    in
    (name, alias)
  in
  let rec loop acc =
    if accept_symbol c "," then loop (table_ref () :: acc) else List.rev acc
  in
  loop [ table_ref () ]

let expr_list c =
  let rec loop acc = if accept_symbol c "," then loop (expr c :: acc) else List.rev acc in
  loop [ expr c ]

let parse_select_body c =
  let distinct = accept_keyword c "DISTINCT" in
  let items = select_items c in
  expect_keyword c "FROM";
  let from = from_clause c in
  let where = if accept_keyword c "WHERE" then Some (expr c) else None in
  let group_by =
    if accept_keyword c "GROUP" then begin
      expect_keyword c "BY";
      expr_list c
    end
    else []
  in
  let having = if accept_keyword c "HAVING" then Some (expr c) else None in
  let order_by =
    if accept_keyword c "ORDER" then begin
      expect_keyword c "BY";
      let one () =
        let e = expr c in
        let dir =
          if accept_keyword c "DESC" then Desc
          else begin
            ignore (accept_keyword c "ASC");
            Asc
          end
        in
        (e, dir)
      in
      let rec loop acc = if accept_symbol c "," then loop (one () :: acc) else List.rev acc in
      loop [ one () ]
    end
    else []
  in
  let limit =
    if accept_keyword c "LIMIT" then begin
      let n =
        match next c with
        | Lexer.INT n when n >= 0 -> n
        | t -> fail "expected row count after LIMIT, found %s" (describe t)
      in
      let m =
        if accept_keyword c "OFFSET" then
          match next c with
          | Lexer.INT m when m >= 0 -> m
          | t -> fail "expected row count after OFFSET, found %s" (describe t)
        else 0
      in
      Some (n, m)
    end
    else None
  in
  { distinct; items; from; where; group_by; having; order_by; limit }

let parse_statement c =
  match next c with
  | Lexer.KEYWORD "SELECT" -> Select (parse_select_body c)
  | Lexer.KEYWORD "INSERT" ->
    expect_keyword c "INTO";
    let table = ident c in
    let columns =
      if accept_symbol c "(" then begin
        let rec loop acc =
          let acc = ident c :: acc in
          if accept_symbol c "," then loop acc
          else begin
            expect_symbol c ")";
            List.rev acc
          end
        in
        Some (loop [])
      end
      else None
    in
    expect_keyword c "VALUES";
    let row () =
      expect_symbol c "(";
      let vs = expr_list c in
      expect_symbol c ")";
      vs
    in
    let rec rows acc = if accept_symbol c "," then rows (row () :: acc) else List.rev acc in
    Insert { table; columns; rows = rows [ row () ] }
  | Lexer.KEYWORD "UPDATE" ->
    let table = ident c in
    expect_keyword c "SET";
    let assignment () =
      let col = ident c in
      expect_symbol c "=";
      (col, expr c)
    in
    let rec sets acc =
      if accept_symbol c "," then sets (assignment () :: acc) else List.rev acc
    in
    let sets = sets [ assignment () ] in
    let where = if accept_keyword c "WHERE" then Some (expr c) else None in
    Update { table; sets; where }
  | Lexer.KEYWORD "DELETE" ->
    expect_keyword c "FROM";
    let table = ident c in
    let where = if accept_keyword c "WHERE" then Some (expr c) else None in
    Delete { table; where }
  | t -> fail "expected a statement, found %s" (describe t)

let finish c =
  ignore (accept_symbol c ";");
  match peek c with
  | Lexer.EOF -> ()
  | t -> fail "trailing input: %s" (describe t)

let parse src =
  let c = { tokens = Lexer.tokenize src } in
  let stmt = parse_statement c in
  finish c;
  stmt

let parse_select src =
  match parse src with
  | Select s -> s
  | Insert _ | Update _ | Delete _ -> fail "expected a SELECT statement"

let parse_expr src =
  let c = { tokens = Lexer.tokenize src } in
  let e = expr c in
  finish c;
  e
