type binop = Add | Sub | Mul | Div | Eq | Neq | Lt | Le | Gt | Ge | And | Or

type unop = Not | Neg

type agg = Sum | Count | Min | Max | Avg

type expr =
  | Lit of Vnl_relation.Value.t
  | Col of string option * string
  | Param of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Case of (expr * expr) list * expr option
  | Agg of agg * expr option
  | Is_null of expr
  | Is_not_null of expr
  | In of expr * expr list
  | Between of expr * expr * expr
  | Like of expr * string

type select_item = Star | Item of expr * string option

type order_dir = Asc | Desc

type select = {
  distinct : bool;
  items : select_item list;
  from : (string * string option) list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : (int * int) option;
}

type statement =
  | Select of select
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }

let select_all table =
  {
    distinct = false;
    items = [ Star ];
    from = [ (table, None) ];
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
  }

let rec has_aggregate = function
  | Agg _ -> true
  | Lit _ | Col _ | Param _ -> false
  | Binop (_, a, b) -> has_aggregate a || has_aggregate b
  | Unop (_, e) | Is_null e | Is_not_null e -> has_aggregate e
  | Case (arms, default) ->
    List.exists (fun (c, e) -> has_aggregate c || has_aggregate e) arms
    || (match default with Some e -> has_aggregate e | None -> false)
  | In (e, es) -> has_aggregate e || List.exists has_aggregate es
  | Between (e, lo, hi) -> has_aggregate e || has_aggregate lo || has_aggregate hi
  | Like (e, _) -> has_aggregate e

let rec map_columns f = function
  | Col (q, name) -> f q name
  | (Lit _ | Param _) as e -> e
  | Binop (op, a, b) -> Binop (op, map_columns f a, map_columns f b)
  | Unop (op, e) -> Unop (op, map_columns f e)
  | Case (arms, default) ->
    Case
      ( List.map (fun (c, e) -> (map_columns f c, map_columns f e)) arms,
        Option.map (map_columns f) default )
  | Agg (a, e) -> Agg (a, Option.map (map_columns f) e)
  | Is_null e -> Is_null (map_columns f e)
  | Is_not_null e -> Is_not_null (map_columns f e)
  | In (e, es) -> In (map_columns f e, List.map (map_columns f) es)
  | Between (e, lo, hi) -> Between (map_columns f e, map_columns f lo, map_columns f hi)
  | Like (e, pat) -> Like (map_columns f e, pat)

let columns_of expr =
  let acc = ref [] in
  let rec go = function
    | Col (q, name) -> acc := (q, name) :: !acc
    | Lit _ | Param _ -> ()
    | Binop (_, a, b) ->
      go a;
      go b
    | Unop (_, e) | Is_null e | Is_not_null e -> go e
    | Case (arms, default) ->
      List.iter
        (fun (c, e) ->
          go c;
          go e)
        arms;
      Option.iter go default
    | Agg (_, e) -> Option.iter go e
    | In (e, es) ->
      go e;
      List.iter go es
    | Between (e, lo, hi) ->
      go e;
      go lo;
      go hi
    | Like (e, _) -> go e
  in
  go expr;
  List.rev !acc

let conj where extra = match where with None -> extra | Some w -> Binop (And, w, extra)

let rec equal_expr a b =
  match (a, b) with
  | Lit x, Lit y -> Vnl_relation.Value.equal x y
  | Col (qx, nx), Col (qy, ny) -> qx = qy && String.equal nx ny
  | Param x, Param y -> String.equal x y
  | Binop (opx, ax, bx), Binop (opy, ay, by) -> opx = opy && equal_expr ax ay && equal_expr bx by
  | Unop (opx, x), Unop (opy, y) -> opx = opy && equal_expr x y
  | Case (armsx, dx), Case (armsy, dy) ->
    List.length armsx = List.length armsy
    && List.for_all2 (fun (cx, ex) (cy, ey) -> equal_expr cx cy && equal_expr ex ey) armsx armsy
    && (match (dx, dy) with
       | None, None -> true
       | Some x, Some y -> equal_expr x y
       | _ -> false)
  | Agg (ax, ex), Agg (ay, ey) -> (
    ax = ay
    &&
    match (ex, ey) with
    | None, None -> true
    | Some x, Some y -> equal_expr x y
    | _ -> false)
  | Is_null x, Is_null y | Is_not_null x, Is_not_null y -> equal_expr x y
  | In (x, xs), In (y, ys) ->
    equal_expr x y && List.length xs = List.length ys && List.for_all2 equal_expr xs ys
  | Between (x, a, b), Between (y, c, d) -> equal_expr x y && equal_expr a c && equal_expr b d
  | Like (x, p), Like (y, q) -> equal_expr x y && String.equal p q
  | ( ( Lit _ | Col _ | Param _ | Binop _ | Unop _ | Case _ | Agg _ | Is_null _
      | Is_not_null _ | In _ | Between _ | Like _ ),
      _ ) ->
    false
