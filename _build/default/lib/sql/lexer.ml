type token =
  | IDENT of string
  | KEYWORD of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | PARAM of string
  | SYMBOL of string
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE";
    "AND"; "OR"; "NOT"; "AS"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "IS";
    "NULL"; "SUM"; "COUNT"; "MIN"; "MAX"; "AVG"; "DATE"; "TRUE"; "FALSE";
    "IN"; "BETWEEN"; "LIKE"; "LIMIT"; "OFFSET";
  ]

let keyword_set = List.fold_left (fun s k -> k :: s) [] keywords

let is_keyword s = List.mem (String.uppercase_ascii s) keyword_set

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec skip_ws i =
    if i < n && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r') then
      skip_ws (i + 1)
    else i
  in
  let rec lex i =
    let i = skip_ws i in
    if i >= n then emit EOF
    else
      let c = src.[i] in
      if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        let word = String.sub src i (!j - i) in
        if is_keyword word then emit (KEYWORD (String.uppercase_ascii word))
        else emit (IDENT word);
        lex !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then begin
          incr j;
          while !j < n && is_digit src.[!j] do
            incr j
          done;
          emit (FLOAT (float_of_string (String.sub src i (!j - i))))
        end
        else emit (INT (int_of_string (String.sub src i (!j - i))));
        lex !j
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string literal", i))
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        lex j
      end
      else if c = ':' then begin
        let j = ref (i + 1) in
        if !j >= n || not (is_ident_start src.[!j]) then
          raise (Lex_error ("expected parameter name after ':'", i));
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        emit (PARAM (String.sub src (i + 1) (!j - i - 1)));
        lex !j
      end
      else
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | "<=" | ">=" | "<>" | "!=" ->
          emit (SYMBOL (if two = "!=" then "<>" else two));
          lex (i + 2)
        | _ -> (
          match c with
          | '(' | ')' | ',' | '*' | '+' | '-' | '/' | '=' | '<' | '>' | '.' | ';' ->
            emit (SYMBOL (String.make 1 c));
            lex (i + 1)
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i)))
  in
  lex 0;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "IDENT(%s)" s
  | KEYWORD s -> Format.fprintf ppf "KW(%s)" s
  | INT n -> Format.fprintf ppf "INT(%d)" n
  | FLOAT f -> Format.fprintf ppf "FLOAT(%g)" f
  | STRING s -> Format.fprintf ppf "STR(%s)" s
  | PARAM s -> Format.fprintf ppf "PARAM(:%s)" s
  | SYMBOL s -> Format.fprintf ppf "SYM(%s)" s
  | EOF -> Format.pp_print_string ppf "EOF"
