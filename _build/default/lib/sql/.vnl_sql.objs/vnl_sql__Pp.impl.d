lib/sql/pp.ml: Ast Format List Option String Vnl_relation
