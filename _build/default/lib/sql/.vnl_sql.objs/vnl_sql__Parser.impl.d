lib/sql/parser.ml: Ast Format Lexer List Printf String Vnl_relation
