lib/sql/parser.mli: Ast Vnl_relation
