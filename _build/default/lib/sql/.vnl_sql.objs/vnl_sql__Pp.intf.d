lib/sql/pp.mli: Ast Format
