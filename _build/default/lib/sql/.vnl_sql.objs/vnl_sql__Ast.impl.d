lib/sql/ast.ml: List Option String Vnl_relation
