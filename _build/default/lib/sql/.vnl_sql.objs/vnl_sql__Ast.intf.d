lib/sql/ast.mli: Vnl_relation
