module Value = Vnl_relation.Value

module Key = struct
  type t = Value.t list

  let rec compare a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
      let c = Value.compare x y in
      if c <> 0 then c else compare xs ys
end

(* Functional nodes under a mutable root: inserts path-copy and report splits
   upward; deletes path-copy without rebalancing. *)
type 'a node =
  | Leaf of (Key.t * 'a) array
  | Inner of Key.t array * 'a node array
      (** [Inner (seps, children)]: [Array.length children = Array.length seps + 1];
          keys in [children.(i)] are [< seps.(i)] and [>= seps.(i-1)]. *)

type 'a t = { order : int; mutable root : 'a node; mutable length : int }

let create ?(order = 32) () =
  if order < 4 then invalid_arg "Bptree.create: order must be >= 4";
  { order; root = Leaf [||]; length = 0 }

(* Number of children of [Inner] whose subtree may contain [key]. *)
let child_index seps key =
  let rec loop i =
    if i >= Array.length seps then i
    else if Key.compare key seps.(i) < 0 then i
    else loop (i + 1)
  in
  loop 0

(* Position of [key] in a sorted entry array, or the insertion point. *)
let leaf_search entries key =
  let rec loop lo hi =
    if lo >= hi then (lo, false)
    else
      let mid = (lo + hi) / 2 in
      let c = Key.compare key (fst entries.(mid)) in
      if c = 0 then (mid, true) else if c < 0 then loop lo mid else loop (mid + 1) hi
  in
  loop 0 (Array.length entries)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let array_set arr i x =
  let copy = Array.copy arr in
  copy.(i) <- x;
  copy

type 'a push = One of 'a node | Two of 'a node * Key.t * 'a node

let split_leaf entries =
  let n = Array.length entries in
  let mid = n / 2 in
  let left = Array.sub entries 0 mid and right = Array.sub entries mid (n - mid) in
  Two (Leaf left, fst right.(0), Leaf right)

let split_inner seps children =
  let n = Array.length seps in
  let mid = n / 2 in
  let up = seps.(mid) in
  let lseps = Array.sub seps 0 mid and rseps = Array.sub seps (mid + 1) (n - mid - 1) in
  let lkids = Array.sub children 0 (mid + 1)
  and rkids = Array.sub children (mid + 1) (Array.length children - mid - 1) in
  Two (Inner (lseps, lkids), up, Inner (rseps, rkids))

let rec insert_node order node key payload =
  match node with
  | Leaf entries -> (
    let i, found = leaf_search entries key in
    if found then (One (Leaf (array_set entries i (key, payload))), false)
    else
      let entries = array_insert entries i (key, payload) in
      ((if Array.length entries > order then split_leaf entries else One (Leaf entries)), true))
  | Inner (seps, children) -> (
    let ci = child_index seps key in
    let pushed, grew = insert_node order children.(ci) key payload in
    match pushed with
    | One child -> (One (Inner (seps, array_set children ci child)), grew)
    | Two (left, up, right) ->
      let seps = array_insert seps ci up in
      let children = array_insert (array_set children ci left) (ci + 1) right in
      ((if Array.length seps > order then split_inner seps children else One (Inner (seps, children))), grew))

let insert t key payload =
  let pushed, grew = insert_node t.order t.root key payload in
  (match pushed with
  | One node -> t.root <- node
  | Two (left, up, right) -> t.root <- Inner ([| up |], [| left; right |]));
  if grew then t.length <- t.length + 1

let rec find_node node key =
  match node with
  | Leaf entries ->
    let i, found = leaf_search entries key in
    if found then Some (snd entries.(i)) else None
  | Inner (seps, children) -> find_node children.(child_index seps key) key

let find t key = find_node t.root key

let mem t key = find t key <> None

let rec remove_node node key =
  match node with
  | Leaf entries ->
    let i, found = leaf_search entries key in
    if found then Some (Leaf (array_remove entries i)) else None
  | Inner (seps, children) -> (
    let ci = child_index seps key in
    match remove_node children.(ci) key with
    | None -> None
    | Some child -> (
      (* Drop children that became completely empty leaves. *)
      match child with
      | Leaf [||] when Array.length children > 1 ->
        let seps = array_remove seps (if ci = 0 then 0 else ci - 1) in
        let children = array_remove children ci in
        if Array.length children = 1 then Some children.(0) else Some (Inner (seps, children))
      | _ -> Some (Inner (seps, array_set children ci child))))

let remove t key =
  match remove_node t.root key with
  | None -> false
  | Some root ->
    t.root <- root;
    t.length <- t.length - 1;
    true

let length t = t.length

let height t =
  let rec loop = function Leaf _ -> 1 | Inner (_, children) -> 1 + loop children.(0) in
  loop t.root

let rec iter_node node f =
  match node with
  | Leaf entries -> Array.iter (fun (k, v) -> f k v) entries
  | Inner (_, children) -> Array.iter (fun c -> iter_node c f) children

let iter t f = iter_node t.root f

let range t ?lo ?hi f =
  let above k = match lo with None -> true | Some lo -> Key.compare k lo >= 0 in
  let below k = match hi with None -> true | Some hi -> Key.compare k hi <= 0 in
  (* Descend only into children whose separator interval intersects
     [lo, hi]. *)
  let rec go = function
    | Leaf entries -> Array.iter (fun (k, v) -> if above k && below k then f k v) entries
    | Inner (seps, children) ->
      let n = Array.length children in
      for i = 0 to n - 1 do
        let child_hi = if i = n - 1 then None else Some seps.(i) in
        let child_lo = if i = 0 then None else Some seps.(i - 1) in
        let skip =
          (match (lo, child_hi) with
          | Some lo, Some chi -> Key.compare chi lo <= 0
          | _ -> false)
          ||
          match (hi, child_lo) with
          | Some hi, Some clo -> Key.compare clo hi > 0
          | _ -> false
        in
        if not skip then go children.(i)
      done
  in
  go t.root

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok = Ok "ok" in
  let rec check node ~lo ~hi ~is_root =
    let in_bounds k =
      (match lo with None -> true | Some b -> Key.compare k b >= 0)
      && match hi with None -> true | Some b -> Key.compare k b < 0
    in
    match node with
    | Leaf entries ->
      let n = Array.length entries in
      if (not is_root) && n > t.order then fail "leaf overflow: %d" n
      else
        let rec sorted i =
          if i + 1 >= n then ok
          else if Key.compare (fst entries.(i)) (fst entries.(i + 1)) >= 0 then
            fail "leaf keys not strictly sorted at %d" i
          else sorted (i + 1)
        in
        if Array.exists (fun (k, _) -> not (in_bounds k)) entries then
          fail "leaf key outside separator bounds"
        else sorted 0
    | Inner (seps, children) ->
      if Array.length children <> Array.length seps + 1 then fail "inner child/sep mismatch"
      else if Array.length seps > t.order then fail "inner overflow: %d" (Array.length seps)
      else if Array.exists (fun k -> not (in_bounds k)) seps then
        fail "separator outside bounds"
      else
        let n = Array.length children in
        let rec loop i =
          if i >= n then ok
          else
            let clo = if i = 0 then lo else Some seps.(i - 1)
            and chi = if i = n - 1 then hi else Some seps.(i) in
            match check children.(i) ~lo:clo ~hi:chi ~is_root:false with
            | Ok _ -> loop (i + 1)
            | Error _ as e -> e
        in
        loop 0
  in
  match check t.root ~lo:None ~hi:None ~is_root:true with
  | Error _ as e -> e
  | Ok _ ->
    let counted = ref 0 in
    iter t (fun _ _ -> incr counted);
    if !counted <> t.length then fail "length mismatch: counted %d, recorded %d" !counted t.length
    else ok
