lib/index/bptree.mli: Vnl_relation
