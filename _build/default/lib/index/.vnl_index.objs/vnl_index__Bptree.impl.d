lib/index/bptree.ml: Array List Printf Vnl_relation
