(** Reader-side version extraction (§3.2, Table 1; §5 for nVNL).

    A reader with [sessionVN] = s must see the tuple version that includes
    the effects of every maintenance transaction with maintenanceVN <= s and
    no others.  Per tuple there are three cases:

    + s >= tupleVN: read the current version;
    + tupleVN{n-1} - 1 <= s < tupleVN: read the pre-update version of the
      least slot whose tupleVN > s (for 2VNL this collapses to
      s = tupleVN - 1);
    + s < tupleVN{n-1} - 1 with every slot occupied: the session has
      {e expired} — the needed version was pushed out.

    Table 1 then interprets the governing slot's [operation]: a current
    version with operation = delete is ignored, a pre-update version with
    operation = insert is ignored, and pre-update reads take pre-update
    values for updatable attributes and current values for the rest. *)

exception Session_expired of { session_vn : int; tuple_vn : int }
(** Raised by the per-tuple expiry check (the first detection mechanism of
    §3.2); the coarse global check is {!val:expired_by_state}. *)

type case =
  | Read_current
  | Read_pre_update of int  (** Governing slot (1-based). *)
  | Ignore_tuple
  | Expired of int  (** tupleVN{n-1} that proves expiry. *)

val classify : Schema_ext.t -> session_vn:int -> Vnl_relation.Tuple.t -> case
(** Pure case analysis, before the Table 1 operation filter. *)

val extract :
  Schema_ext.t -> session_vn:int -> Vnl_relation.Tuple.t -> Vnl_relation.Tuple.t option
(** The base tuple this reader sees, or [None] if the tuple is invisible at
    [session_vn].  Raises {!Session_expired} in the expired case. *)

val visible_relation :
  Schema_ext.t -> session_vn:int -> Vnl_query.Table.t -> Vnl_relation.Tuple.t list
(** Extract every visible base tuple from an extended table, in scan
    order. *)

val expired_by_state : session_vn:int -> current_vn:int -> maintenance_active:bool -> bool
(** The global pessimistic check of §4.1: the session is still valid iff
    [sessionVN = currentVN], or [sessionVN = currentVN - 1] with no active
    maintenance transaction. *)
