module Table = Vnl_query.Table

let collectable ext ~min_session_vn tuple =
  match Schema_ext.operation ext ~slot:1 tuple with
  | Op.Insert | Op.Update -> false
  | Op.Delete -> (
    match Schema_ext.tuple_vn ext ~slot:1 tuple with
    | Some vn -> min_session_vn >= vn
    | None -> false)

let collect ext table ~min_session_vn =
  let victims = ref [] in
  Table.scan table (fun rid tuple ->
      if collectable ext ~min_session_vn tuple then victims := rid :: !victims);
  List.iter (fun rid -> Table.delete table rid) !victims;
  List.length !victims
