(** Garbage collection of logically deleted tuples (§7).

    A tuple whose net operation is delete must stay in the relation while
    any reader might still extract its pre-update version.  A session with
    sessionVN = s needs a deleted tuple only when s < tupleVN (it reads a
    pre-update version); once every active session has s >= tupleVN — and
    every future session will, since sessionVN is drawn from currentVN —
    the record can be physically removed. *)

val collectable :
  Schema_ext.t -> min_session_vn:int -> Vnl_relation.Tuple.t -> bool
(** Is this extended tuple a logically deleted record no active session
    (minimum sessionVN given) can still need? *)

val collect : Schema_ext.t -> Vnl_query.Table.t -> min_session_vn:int -> int
(** Physically delete every collectable tuple; returns how many were
    reclaimed.  [min_session_vn] should be the smallest sessionVN among
    active readers, or the current version when none are active. *)
