lib/core/twovnl.mli: Maintenance Schema_ext Version_state Vnl_query Vnl_relation
