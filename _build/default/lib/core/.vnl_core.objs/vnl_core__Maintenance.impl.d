lib/core/maintenance.ml: List Op Printf Schema_ext Vnl_query Vnl_relation
