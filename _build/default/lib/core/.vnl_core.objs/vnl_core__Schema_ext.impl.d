lib/core/schema_ext.ml: Array Hashtbl List Op Printf String Vnl_relation
