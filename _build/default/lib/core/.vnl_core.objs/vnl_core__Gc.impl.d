lib/core/gc.ml: List Op Schema_ext Vnl_query
