lib/core/expiry.ml: Format Printf
