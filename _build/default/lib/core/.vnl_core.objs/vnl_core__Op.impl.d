lib/core/op.ml: Format Printf Vnl_relation
