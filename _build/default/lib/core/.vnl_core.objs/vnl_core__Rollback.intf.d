lib/core/rollback.mli: Schema_ext Vnl_query Vnl_storage
