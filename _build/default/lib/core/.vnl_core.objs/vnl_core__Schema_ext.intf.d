lib/core/schema_ext.mli: Op Vnl_relation
