lib/core/gc.mli: Schema_ext Vnl_query Vnl_relation
