lib/core/expiry.mli: Format
