lib/core/version_state.ml: Printf Vnl_query Vnl_relation Vnl_storage
