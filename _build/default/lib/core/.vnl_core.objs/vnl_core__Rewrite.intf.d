lib/core/rewrite.mli: Maintenance Schema_ext Vnl_query Vnl_sql Vnl_storage
