lib/core/maintenance.mli: Schema_ext Vnl_query Vnl_relation Vnl_storage
