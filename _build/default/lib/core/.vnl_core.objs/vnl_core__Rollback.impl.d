lib/core/rollback.ml: List Maintenance Op Schema_ext Vnl_query Vnl_relation
