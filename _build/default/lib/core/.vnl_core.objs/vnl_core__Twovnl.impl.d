lib/core/twovnl.ml: Gc Hashtbl List Logs Maintenance Option Printf Reader Rewrite Rollback Schema_ext String Version_state Vnl_query Vnl_relation Vnl_sql Vnl_storage Vnl_util
