lib/core/reader.ml: List Op Schema_ext Vnl_query Vnl_relation
