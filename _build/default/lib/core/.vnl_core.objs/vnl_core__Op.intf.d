lib/core/op.mli: Format Vnl_relation
