lib/core/rewrite.ml: Array List Maintenance Option Printf Schema_ext String Vnl_query Vnl_relation Vnl_sql
