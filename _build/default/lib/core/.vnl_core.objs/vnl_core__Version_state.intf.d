lib/core/version_state.mli: Vnl_query
