lib/core/reader.mli: Schema_ext Vnl_query Vnl_relation
