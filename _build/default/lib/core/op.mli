(** Logical maintenance operations and their net effect (§3.3).

    The [operation] attribute of an extended tuple records the net effect of
    all operations the most recent maintenance transaction performed on it:
    e.g. an insert followed by an update in the same transaction is still an
    insert, and a delete followed by an insert is an update.  Getting this
    wrong makes readers extract the wrong tuple version, which is why the
    combination rules are explicit and property-tested. *)

type t = Insert | Update | Delete

exception Impossible of string
(** An operation sequence the paper's decision tables mark "impossible"
    (e.g. updating an already-deleted tuple). *)

val combine_same_txn : previous:t -> t -> [ `Becomes of t | `Physically_delete ]
(** Net effect of applying a new logical operation to a tuple already
    bearing [previous] from the {e same} maintenance transaction:
    - insert then update = insert;
    - insert then delete = physically delete the tuple;
    - update then update = update;
    - update then delete = delete;
    - delete then insert = update.
    Raises {!Impossible} for update/delete after delete and insert after
    insert or update. *)

val check_older_txn : previous:t -> t -> unit
(** Validate a new logical operation against a tuple last touched by an
    {e older} transaction: inserting over a live (insert/update) tuple with
    the same key, or updating/deleting an already-deleted tuple, raises
    {!Impossible}. *)

val to_value : t -> Vnl_relation.Value.t
(** One-byte physical encoding (["i"], ["u"], ["d"]) — the [operation]
    attribute is 1 byte in Figure 3. *)

val of_value : Vnl_relation.Value.t -> t
(** Raises [Invalid_argument] on anything but the three codes. *)

val to_string : t -> string
(** Paper-style spelling: ["insert"], ["update"], ["delete"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val all : t list
