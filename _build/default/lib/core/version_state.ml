module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Dtype = Vnl_relation.Dtype
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Heap_file = Vnl_storage.Heap_file

let table_name = "Version"

let schema =
  Schema.make
    [ Schema.attr "currentVN" Dtype.Int; Schema.attr "maintenanceActive" Dtype.Bool ]

type t = { table : Table.t; rid : Heap_file.rid }

let install db =
  let table = Database.create_table db table_name schema in
  let rid = Table.insert table (Tuple.make schema [ Value.Int 1; Value.Bool false ]) in
  { table; rid }

let attach db =
  match Database.table db table_name with
  | None -> failwith "Version_state.attach: no Version relation"
  | Some table -> (
    match Table.to_list table with
    | [ (rid, _) ] -> { table; rid }
    | _ -> failwith "Version_state.attach: Version relation must hold exactly one tuple")

let read t =
  match Table.get t.table t.rid with
  | Some tuple -> (
    match (Tuple.get tuple 0, Tuple.get tuple 1) with
    | Value.Int vn, Value.Bool active -> (vn, active)
    | _ -> invalid_arg "Version_state: corrupt Version tuple")
  | None -> invalid_arg "Version_state: Version tuple missing"

let write t vn active =
  Table.update_in_place t.table t.rid
    (Tuple.make schema [ Value.Int vn; Value.Bool active ])

let current_vn t = fst (read t)

let maintenance_active t = snd (read t)

let begin_maintenance t =
  let vn, active = read t in
  if active then invalid_arg "Version_state: a maintenance transaction is already active";
  write t vn true;
  vn + 1

let commit_maintenance t ~vn =
  let current, active = read t in
  if not active then invalid_arg "Version_state: no active maintenance transaction";
  if vn <> current + 1 then
    invalid_arg
      (Printf.sprintf "Version_state: commit vn %d does not follow currentVN %d" vn current);
  write t vn false

let abort_maintenance t =
  let current, active = read t in
  if not active then invalid_arg "Version_state: no active maintenance transaction";
  write t current false
