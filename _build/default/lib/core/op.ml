module Value = Vnl_relation.Value

type t = Insert | Update | Delete

exception Impossible of string

let to_string = function Insert -> "insert" | Update -> "update" | Delete -> "delete"

let impossible previous next =
  raise
    (Impossible
       (Printf.sprintf "cannot apply %s to a tuple whose previous operation is %s"
          (to_string next) (to_string previous)))

let combine_same_txn ~previous next =
  match (previous, next) with
  | Insert, Update -> `Becomes Insert
  | Insert, Delete -> `Physically_delete
  | Update, Update -> `Becomes Update
  | Update, Delete -> `Becomes Delete
  | Delete, Insert -> `Becomes Update
  | (Insert | Update), Insert | Delete, (Update | Delete) -> impossible previous next

let check_older_txn ~previous next =
  match (previous, next) with
  | Delete, Insert -> ()
  | (Insert | Update), (Update | Delete) -> ()
  | (Insert | Update), Insert | Delete, (Update | Delete) -> impossible previous next

let to_value op = Value.Str (match op with Insert -> "i" | Update -> "u" | Delete -> "d")

let of_value = function
  | Value.Str "i" -> Insert
  | Value.Str "u" -> Update
  | Value.Str "d" -> Delete
  | v -> invalid_arg (Printf.sprintf "Op.of_value: %s" (Value.to_string v))

let pp ppf op = Format.pp_print_string ppf (to_string op)

let equal a b = a = b

let all = [ Insert; Update; Delete ]
