let never_expire_bound ~n ~gap ~txn_len =
  if n < 2 then invalid_arg "Expiry.never_expire_bound: n must be >= 2";
  if gap < 0 || txn_len < 0 then invalid_arg "Expiry.never_expire_bound: negative duration";
  ((n - 1) * (gap + txn_len)) - txn_len

type policy = Fixed_schedule | Commit_when_quiescent | More_versions of int

let policy_name = function
  | Fixed_schedule -> "fixed-schedule"
  | Commit_when_quiescent -> "commit-when-quiescent"
  | More_versions n -> Printf.sprintf "%dVNL" n

let pp_policy ppf p = Format.pp_print_string ppf (policy_name p)

let versions_needed ~session_len ~gap ~txn_len =
  let rec search n =
    if n > 1_000_000 then invalid_arg "Expiry.versions_needed: unsatisfiable"
    else if never_expire_bound ~n ~gap ~txn_len >= session_len then n
    else search (n + 1)
  in
  search 2
