module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Table = Vnl_query.Table

type stats = {
  mutable logical_inserts : int;
  mutable logical_updates : int;
  mutable logical_deletes : int;
  mutable physical_inserts : int;
  mutable physical_updates : int;
  mutable physical_deletes : int;
}

let fresh_stats () =
  {
    logical_inserts = 0;
    logical_updates = 0;
    logical_deletes = 0;
    physical_inserts = 0;
    physical_updates = 0;
    physical_deletes = 0;
  }

let count f = function Some s -> f s | None -> ()

let push_back ext tuple =
  let nslots = Schema_ext.slots ext in
  if nslots = 1 then tuple
  else begin
    (* Move slot i into slot i+1, oldest first so nothing is clobbered. *)
    let updates = ref [] in
    for slot = nslots - 1 downto 1 do
      let src_vn = Schema_ext.tuple_vn_index ext ~slot
      and dst_vn = Schema_ext.tuple_vn_index ext ~slot:(slot + 1)
      and src_op = Schema_ext.operation_index ext ~slot
      and dst_op = Schema_ext.operation_index ext ~slot:(slot + 1) in
      updates := (dst_vn, Tuple.get tuple src_vn) :: (dst_op, Tuple.get tuple src_op) :: !updates;
      List.iter
        (fun j ->
          let src = Schema_ext.pre_index ext ~slot j
          and dst = Schema_ext.pre_index ext ~slot:(slot + 1) j in
          updates := (dst, Tuple.get tuple src) :: !updates)
        (Schema_ext.updatable_base_indices ext)
    done;
    Tuple.set_many tuple !updates
  end

(* Inverse of push_back: slot_i <- slot_{i+1}, emptying the last slot.
   Used to restore a tuple's pushed-back history (abort, and the
   insert-over-delete-then-delete case below). *)
let shift_forward ext tuple =
  let updates = ref [] in
  let nslots = Schema_ext.slots ext in
  for slot = 1 to nslots - 1 do
    let src_vn = Schema_ext.tuple_vn_index ext ~slot:(slot + 1)
    and dst_vn = Schema_ext.tuple_vn_index ext ~slot
    and src_op = Schema_ext.operation_index ext ~slot:(slot + 1)
    and dst_op = Schema_ext.operation_index ext ~slot in
    updates := (dst_vn, Tuple.get tuple src_vn) :: (dst_op, Tuple.get tuple src_op) :: !updates;
    List.iter
      (fun j ->
        let src = Schema_ext.pre_index ext ~slot:(slot + 1) j
        and dst = Schema_ext.pre_index ext ~slot j in
        updates := (dst, Tuple.get tuple src) :: !updates)
      (Schema_ext.updatable_base_indices ext)
  done;
  updates := (Schema_ext.tuple_vn_index ext ~slot:nslots, Value.Null) :: !updates;
  updates := (Schema_ext.operation_index ext ~slot:nslots, Value.Null) :: !updates;
  List.iter
    (fun j -> updates := (Schema_ext.pre_index ext ~slot:nslots j, Value.Null) :: !updates)
    (Schema_ext.updatable_base_indices ext);
  Tuple.set_many tuple !updates

let slot1_vn ext tuple =
  match Schema_ext.tuple_vn ext ~slot:1 tuple with
  | Some vn -> vn
  | None -> invalid_arg "Maintenance: tuple without slot 1"

(* Write slot 1 bookkeeping and optionally the pre-update values. *)
let set_slot1 ext tuple ~vn ~op ~pre =
  let updates =
    ref
      [
        (Schema_ext.tuple_vn_index ext ~slot:1, Value.Int vn);
        (Schema_ext.operation_index ext ~slot:1, Op.to_value op);
      ]
  in
  (match pre with
  | `Keep -> ()
  | `Nulls ->
    List.iter
      (fun j -> updates := (Schema_ext.pre_index ext ~slot:1 j, Value.Null) :: !updates)
      (Schema_ext.updatable_base_indices ext)
  | `From_current ->
    List.iter
      (fun j ->
        updates :=
          (Schema_ext.pre_index ext ~slot:1 j, Tuple.get tuple (Schema_ext.base_index ext j))
          :: !updates)
      (Schema_ext.updatable_base_indices ext));
  Tuple.set_many tuple !updates

let set_current ext tuple assignments =
  Tuple.set_many tuple
    (List.map (fun (j, v) -> (Schema_ext.base_index ext j, v)) assignments)

let check_updatable ext assignments =
  let updatable = Schema_ext.updatable_base_indices ext in
  List.iter
    (fun (j, _) ->
      if not (List.mem j updatable) then
        invalid_arg (Printf.sprintf "Maintenance: base attribute %d is not updatable" j))
    assignments

let is_logically_live ext tuple =
  match Schema_ext.operation ext ~slot:1 tuple with
  | Op.Delete -> false
  | Op.Insert | Op.Update -> true

let apply_insert ?stats ?on_over_delete ext table ~vn base_tuple =
  count (fun s -> s.logical_inserts <- s.logical_inserts + 1) stats;
  let conflict =
    if Vnl_query.Table.has_key table then
      Table.find_by_key table (Tuple.key_of (Schema_ext.base ext) base_tuple)
    else None
  in
  match conflict with
  | None ->
    (* Table 2, row 3: no conflicting tuple. *)
    count (fun s -> s.physical_inserts <- s.physical_inserts + 1) stats;
    Table.insert table (Schema_ext.fresh_insert ext ~vn base_tuple)
  | Some (rid, existing) ->
    let prev_op = Schema_ext.operation ext ~slot:1 existing in
    let mv =
      List.mapi (fun j v -> (j, v)) (Tuple.values base_tuple)
    in
    let tvn = slot1_vn ext existing in
    if tvn < vn then begin
      (* Table 2, row 1: conflict from an older transaction — only a
         logically deleted tuple can collide. *)
      Op.check_older_txn ~previous:prev_op Op.Insert;
      (match on_over_delete with Some f -> f rid | None -> ());
      let t = push_back ext existing in
      let t = set_slot1 ext t ~vn ~op:Op.Insert ~pre:`Nulls in
      let t = set_current ext t mv in
      count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
      Table.update_in_place table rid t;
      rid
    end
    else begin
      (* Table 2, row 2: conflict with this same transaction. *)
      match Op.combine_same_txn ~previous:prev_op Op.Insert with
      | `Becomes net ->
        let t = set_slot1 ext existing ~vn ~op:net ~pre:`Keep in
        let t = set_current ext t mv in
        count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
        Table.update_in_place table rid t;
        rid
      | `Physically_delete -> assert false (* insert never physically deletes *)
    end

let apply_update ?stats ext table ~vn rid assignments =
  count (fun s -> s.logical_updates <- s.logical_updates + 1) stats;
  check_updatable ext assignments;
  match Table.get table rid with
  | None -> invalid_arg "Maintenance.apply_update: no tuple at rid"
  | Some existing ->
    let prev_op = Schema_ext.operation ext ~slot:1 existing in
    let tvn = slot1_vn ext existing in
    if tvn < vn then begin
      (* Table 3, row 1. *)
      Op.check_older_txn ~previous:prev_op Op.Update;
      let t = push_back ext existing in
      let t = set_slot1 ext t ~vn ~op:Op.Update ~pre:`From_current in
      let t = set_current ext t assignments in
      count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
      Table.update_in_place table rid t
    end
    else begin
      (* Table 3, row 2: net effect keeps the existing operation. *)
      match Op.combine_same_txn ~previous:prev_op Op.Update with
      | `Becomes net ->
        let t = set_slot1 ext existing ~vn ~op:net ~pre:`Keep in
        let t = set_current ext t assignments in
        count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
        Table.update_in_place table rid t
      | `Physically_delete -> assert false
    end

let apply_delete ?stats ?(was_insert_over_delete = fun _ -> false) ext table ~vn rid =
  count (fun s -> s.logical_deletes <- s.logical_deletes + 1) stats;
  match Table.get table rid with
  | None -> invalid_arg "Maintenance.apply_delete: no tuple at rid"
  | Some existing ->
    let prev_op = Schema_ext.operation ext ~slot:1 existing in
    let tvn = slot1_vn ext existing in
    if tvn < vn then begin
      (* Table 4, row 1: logical delete is a physical update preserving the
         pre-update version. *)
      Op.check_older_txn ~previous:prev_op Op.Delete;
      let t = push_back ext existing in
      let t = set_slot1 ext t ~vn ~op:Op.Delete ~pre:`From_current in
      count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
      Table.update_in_place table rid t
    end
    else begin
      (* Table 4, row 2. *)
      match Op.combine_same_txn ~previous:prev_op Op.Delete with
      | `Physically_delete when not (was_insert_over_delete rid) ->
        count (fun s -> s.physical_deletes <- s.physical_deletes + 1) stats;
        Table.delete table rid
      | `Physically_delete ->
        (* Correction to Table 4 row 2: the same-transaction insert landed on
           a logically deleted key (Table 2 row 1), so the record still
           carries history older readers may need — physically deleting it
           would lose that.  Restore the deleted state instead: shift the
           pushed-back slots forward under nVNL; under plain 2VNL re-stamp
           the tuple as deleted at vn - 1 (invisible to every non-expired
           session, exactly like the committed delete it stands for). *)
        count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
        if Schema_ext.slots ext >= 2 && Schema_ext.tuple_vn ext ~slot:2 existing <> None then
          Table.update_in_place table rid (shift_forward ext existing)
        else
          Table.update_in_place table rid
            (Tuple.set_many existing
               [
                 (Schema_ext.tuple_vn_index ext ~slot:1, Value.Int (vn - 1));
                 (Schema_ext.operation_index ext ~slot:1, Op.to_value Op.Delete);
               ])
      | `Becomes net ->
        let t = set_slot1 ext existing ~vn ~op:net ~pre:`Keep in
        count (fun s -> s.physical_updates <- s.physical_updates + 1) stats;
        Table.update_in_place table rid t
    end
