(** Plain-text table rendering for benchmark and experiment reports.

    The benchmark harness reproduces the paper's tables and figures as text;
    this module renders aligned ASCII tables in the style of the paper. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with column widths
    fitted to the content.  [aligns] defaults to left alignment for every
    column; a shorter list is padded with [Left]. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by output to stdout with a trailing
    newline. *)

val fmt_float : float -> string
(** Render a float with two decimals, trimming [-0.00] to [0.00]. *)

val fmt_pct : float -> string
(** Render a ratio as a percentage with one decimal, e.g. [0.214] as
    ["21.4%"]. *)

val section : string -> unit
(** Print a prominent section banner used to delimit experiments in the
    benchmark output. *)

val subsection : string -> unit
(** Print a lighter banner for sub-results within an experiment. *)
