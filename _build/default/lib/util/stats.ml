type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  total : float;
}

let total xs = List.fold_left ( +. ) 0.0 xs

let mean = function
  | [] -> 0.0
  | xs -> total xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let percentile p = function
  | [] -> 0.0
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    arr.(idx)

let summarize xs =
  let n = List.length xs in
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = (match xs with [] -> 0.0 | _ -> List.fold_left min infinity xs);
    max = (match xs with [] -> 0.0 | _ -> List.fold_left max neg_infinity xs);
    p50 = percentile 50.0 xs;
    p90 = percentile 90.0 xs;
    p99 = percentile 99.0 xs;
    total = total xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f"
    s.n s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

let ratio a b = if b = 0.0 then 0.0 else a /. b
