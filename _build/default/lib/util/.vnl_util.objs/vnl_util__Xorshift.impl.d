lib/util/xorshift.ml: Array Int64 List
