lib/util/xorshift.mli:
