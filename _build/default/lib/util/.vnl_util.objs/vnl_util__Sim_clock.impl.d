lib/util/sim_clock.ml: Format
