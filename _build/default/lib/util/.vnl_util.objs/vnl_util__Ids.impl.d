lib/util/ids.ml:
