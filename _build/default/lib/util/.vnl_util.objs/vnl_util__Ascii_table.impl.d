lib/util/ascii_table.ml: List Printf String
