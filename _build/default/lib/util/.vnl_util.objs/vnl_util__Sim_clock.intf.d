lib/util/sim_clock.mli: Format
