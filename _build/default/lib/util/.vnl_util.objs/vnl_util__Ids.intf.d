lib/util/ids.mli:
