type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 step: advances state and returns a well-mixed 64-bit value. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xorshift.int: bound must be positive";
  next_nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Xorshift.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Xorshift.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Xorshift.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t =
  let s = next_int64 t in
  { state = Int64.logxor s 0xD1B54A32D192ED03L }
