type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = []) ~header rows =
  let ncols = List.length header in
  let align_of i = match List.nth_opt aligns i with Some a -> a | None -> Left in
  let of_row row i = match List.nth_opt row i with Some s -> s | None -> "" in
  let cell_width i =
    List.fold_left
      (fun acc row -> max acc (String.length (of_row row i)))
      (String.length (of_row header i))
      rows
  in
  let widths = List.init ncols cell_width in
  let render_row row =
    let cells = List.mapi (fun i w -> pad (align_of i) w (of_row row i)) widths in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    let dashes = List.map (fun w -> String.make (w + 2) '-') widths in
    "+" ^ String.concat "+" dashes ^ "+"
  in
  let body = List.map render_row rows in
  String.concat "\n" ((rule :: render_row header :: rule :: body) @ [ rule ])

let print ?aligns ~header rows = print_endline (render ?aligns ~header rows)

let fmt_float f =
  let s = Printf.sprintf "%.2f" f in
  if s = "-0.00" then "0.00" else s

let fmt_pct r = Printf.sprintf "%.1f%%" (r *. 100.0)

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title
