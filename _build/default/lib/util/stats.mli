(** Descriptive statistics over float samples, used by the benchmark harness
    and the concurrency simulator's metric reports. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  total : float;
}
(** Five-number-style summary of a sample. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on the sorted
    sample; 0 on the empty list. *)

val summarize : float list -> summary
(** Full summary of a sample. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render as [n=... mean=... p99=...]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]; convenient for overhead
    factors in reports. *)
