type t = { first : int; mutable current : int }

let create ?(first = 1) () = { first; current = first }

let next t =
  let id = t.current in
  t.current <- t.current + 1;
  id

let peek t = t.current

let reset t = t.current <- t.first
