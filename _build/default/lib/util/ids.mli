(** Monotonic identifier generation for transactions, sessions, and pages. *)

type t
(** A counter handing out identifiers starting from a given origin. *)

val create : ?first:int -> unit -> t
(** [create ?first ()] starts at [first] (default 1). *)

val next : t -> int
(** Return the next identifier and advance the counter. *)

val peek : t -> int
(** The identifier [next] would return, without advancing. *)

val reset : t -> unit
(** Restart from the original [first]. *)
