type t = { mutable now : int }

let create () = { now = 0 }

let now t = t.now

let advance t dt =
  if dt < 0 then invalid_arg "Sim_clock.advance: negative delta";
  t.now <- t.now + dt

let advance_to t at = if at > t.now then t.now <- at

let minutes_per_tick = 1

let pp_time_of_day ppf ticks =
  let minutes = ticks * minutes_per_tick in
  let day = minutes / (24 * 60) in
  let rem = minutes mod (24 * 60) in
  Format.fprintf ppf "day%d %02d:%02d" day (rem / 60) (rem mod 60)
