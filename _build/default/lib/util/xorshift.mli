(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    workloads, property tests, and benchmark inputs are reproducible from a
    seed.  The generator is splitmix64 feeding xoshiro-style mixing; quality
    is more than sufficient for workload generation. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] selects a uniform element.  [arr] must be non-empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] selects a uniform element.  [l] must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of further
    draws from [t]; used to give each simulated process its own stream. *)
