(** Logical simulation clock.

    The paper's scenarios (Figures 1 and 2) are day-scale timelines; the
    concurrency experiments measure blocking in logical ticks.  A clock is a
    mutable non-negative counter measured in abstract ticks; scenario code
    maps ticks to minutes of warehouse wall-clock time. *)

type t

val create : unit -> t
(** A clock at time 0. *)

val now : t -> int
(** Current time in ticks. *)

val advance : t -> int -> unit
(** [advance t dt] moves time forward by [dt >= 0] ticks. *)

val advance_to : t -> int -> unit
(** [advance_to t at] moves time forward to [at]; no-op if [at] is in the
    past. *)

val minutes_per_tick : int
(** Conversion constant used by scenario reports: one tick is one minute. *)

val pp_time_of_day : Format.formatter -> int -> unit
(** Render a tick count as ["dayD hh:mm"] assuming [minutes_per_tick]. *)
