(** Data-level 2V2PL: a table wrapper keeping the writer's uncommitted
    versions beside the committed ones.

    Under 2V2PL the writer creates a second version of each tuple it
    modifies while readers continue to see the committed version; at commit
    the new versions replace the old ones and the old ones are discarded —
    which is why commit must wait for the readers {!Two_v2pl} tracks.  This
    module supplies the data half of that protocol: committed state lives
    in the underlying table, the writer's versions in a side buffer that is
    installed on commit or dropped on abort.

    Contrast with 2VNL: here the second version exists only while the
    writer is active, so a reader that outlives the commit loses its
    snapshot (hence the commit gate), whereas 2VNL keeps the pre-update
    version inside the tuple and lets the writer commit immediately. *)

type t

val create : Vnl_query.Table.t -> t

val table : t -> Vnl_query.Table.t

val begin_writer : t -> unit
(** Raises [Invalid_argument] if a writer is active. *)

val writer_active : t -> bool

val writer_insert : t -> Vnl_relation.Tuple.t -> unit
(** Buffer a new tuple, invisible to readers until commit. *)

val writer_update : t -> Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t -> unit
(** Buffer a new version of the tuple at [rid]; readers keep seeing the
    committed version. *)

val writer_delete : t -> Vnl_storage.Heap_file.rid -> unit
(** Buffer a deletion. *)

val read : t -> Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t option
(** Reader access: always the committed version. *)

val writer_read : t -> Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t option
(** The writer's own view: its buffered version if any, else committed. *)

val scan_committed : t -> (Vnl_relation.Tuple.t -> unit) -> unit

val pending_versions : t -> int
(** Buffered (second-version) entries — 2V2PL's transient storage cost. *)

val commit : t -> unit
(** Install every buffered version into the table in place (the paper's
    point: this destroys the previous versions, so it must not happen while
    a gated reader is active — enforcement is {!Two_v2pl}'s job). *)

val abort : t -> unit
(** Drop the buffered versions; committed state is untouched. *)
