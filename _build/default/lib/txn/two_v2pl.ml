module Iset = Set.Make (Int)

type t = {
  mutable readers : (int * Iset.t ref) list;  (** Active readers and read sets. *)
  mutable writer : int option;
  mutable write_set : Iset.t;
}

let create () = { readers = []; writer = None; write_set = Iset.empty }

let begin_reader t ~reader =
  if List.mem_assoc reader t.readers then
    invalid_arg (Printf.sprintf "Two_v2pl: reader %d already active" reader);
  t.readers <- (reader, ref Iset.empty) :: t.readers

let end_reader t ~reader = t.readers <- List.remove_assoc reader t.readers

let begin_writer t ~writer =
  match t.writer with
  | Some w -> invalid_arg (Printf.sprintf "Two_v2pl: writer %d still active" w)
  | None ->
    t.writer <- Some writer;
    t.write_set <- Iset.empty

let read t ~reader ~item =
  match List.assoc_opt reader t.readers with
  | Some set -> set := Iset.add item !set
  | None -> invalid_arg (Printf.sprintf "Two_v2pl: unknown reader %d" reader)

let write t ~writer ~item =
  match t.writer with
  | Some w when w = writer -> t.write_set <- Iset.add item t.write_set
  | Some _ | None -> invalid_arg "Two_v2pl: write by inactive writer"

let blocking_readers t ~writer =
  match t.writer with
  | Some w when w = writer ->
    List.filter_map
      (fun (reader, set) ->
        if Iset.is_empty (Iset.inter !set t.write_set) then None else Some reader)
      t.readers
    |> List.sort compare
  | Some _ | None -> []

let commit_writer t ~writer =
  (match t.writer with
  | Some w when w = writer -> ()
  | Some _ | None -> invalid_arg "Two_v2pl: commit by inactive writer");
  (match blocking_readers t ~writer with
  | [] -> ()
  | rs ->
    invalid_arg
      (Printf.sprintf "Two_v2pl: commit blocked by %d readers" (List.length rs)));
  t.writer <- None;
  t.write_set <- Iset.empty

let active_readers t = List.sort compare (List.map fst t.readers)

let writer_active t = t.writer
