(** Shared/exclusive lock manager with FIFO queues and deadlock detection.

    This is the substrate for the paper's §6 baselines: conventional strict
    two-phase locking, under which "readers block if they attempt to read a
    data item modified by an active maintenance transaction, and the
    maintenance transaction blocks if it attempts to modify a data item read
    by an active reader" (§1).  The API is non-blocking: [acquire] returns
    [`Blocked] and the caller (the discrete-event simulator) parks the
    transaction until a release grants it. *)

type mode = S | X

type t

val create : unit -> t

val acquire : t -> txn:int -> item:int -> mode -> [ `Granted | `Blocked ]
(** Request a lock.  Re-requesting a held lock (same or weaker mode) is
    granted immediately; an S-to-X upgrade is granted when [txn] is the sole
    holder and queues otherwise. *)

val release_all : t -> txn:int -> int list
(** End of transaction: drop all locks and waits of [txn]; returns the
    transactions whose queued requests became granted. *)

val holds : t -> txn:int -> item:int -> mode option
(** Strongest mode currently held. *)

val is_waiting : t -> txn:int -> bool

val blocked_on : t -> txn:int -> int option
(** The item whose queue [txn] sits in, if any. *)

val find_deadlock : t -> int list option
(** A cycle in the waits-for graph (transactions in cycle order), or [None].
    The caller picks a victim and calls {!release_all} on it. *)

val lock_count : t -> int
(** Locks currently held; used to report locking overhead. *)

val acquisitions : t -> int
(** Total grants since creation (the locking-overhead metric 2VNL
    eliminates). *)
