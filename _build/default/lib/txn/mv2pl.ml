module Tuple = Vnl_relation.Tuple
module Heap_file = Vnl_storage.Heap_file
module Table = Vnl_query.Table

type meta = { created_vn : int; mutable current_vn : int; mutable deleted_vn : int option }

type t = {
  table : Table.t;
  pool : Version_pool.t;
  meta : (Heap_file.rid, meta) Hashtbl.t;
  snapshots : (int, int) Hashtbl.t;  (** Active snapshot -> reader count. *)
  mutable current : int;
  mutable writer : int option;
}

let create table =
  let heap = Table.heap table in
  {
    table;
    pool = Version_pool.create (Heap_file.buffer_pool heap) (Table.schema table);
    meta = Hashtbl.create 256;
    snapshots = Hashtbl.create 16;
    current = 1;
    writer = None;
  }

let table t = t.table

let current_vn t = t.current

let meta_of t rid =
  match Hashtbl.find_opt t.meta rid with
  | Some m -> m
  | None ->
    (* Tuples loaded outside the writer API predate all snapshots. *)
    let m = { created_vn = 0; current_vn = 0; deleted_vn = None } in
    Hashtbl.add t.meta rid m;
    m

let begin_snapshot t =
  let s = t.current in
  let count = Option.value ~default:0 (Hashtbl.find_opt t.snapshots s) in
  Hashtbl.replace t.snapshots s (count + 1);
  s

let reader_finished t ~snapshot =
  match Hashtbl.find_opt t.snapshots snapshot with
  | Some 1 -> Hashtbl.remove t.snapshots snapshot
  | Some n -> Hashtbl.replace t.snapshots snapshot (n - 1)
  | None -> ()

let writer_vn t =
  match t.writer with
  | Some w -> w
  | None -> invalid_arg "Mv2pl: no active writer"

let begin_writer t =
  (match t.writer with
  | Some w -> invalid_arg (Printf.sprintf "Mv2pl: writer %d still active" w)
  | None -> ());
  let w = t.current + 1 in
  t.writer <- Some w;
  w

let writer_insert t tuple =
  let w = writer_vn t in
  let rid = Table.insert t.table tuple in
  Hashtbl.replace t.meta rid { created_vn = w; current_vn = w; deleted_vn = None };
  rid

let pool_key (rid : Heap_file.rid) =
  { Version_pool.page = rid.Heap_file.page; slot = rid.Heap_file.slot }

let writer_update t rid tuple =
  let w = writer_vn t in
  let m = meta_of t rid in
  if m.deleted_vn <> None then invalid_arg "Mv2pl: update of deleted tuple";
  (match Table.get t.table rid with
  | None -> invalid_arg "Mv2pl: update of missing tuple"
  | Some old ->
    (* First touch by this writer: preserve the committed before-image. *)
    if m.current_vn < w then Version_pool.stash t.pool ~key:(pool_key rid) ~vn:m.current_vn old);
  Table.update_in_place t.table rid tuple;
  m.current_vn <- w

let writer_delete t rid =
  let w = writer_vn t in
  let m = meta_of t rid in
  if m.deleted_vn <> None then invalid_arg "Mv2pl: delete of deleted tuple";
  m.deleted_vn <- Some w

let commit_writer t =
  let w = writer_vn t in
  t.current <- w;
  t.writer <- None

let abort_writer t =
  let w = writer_vn t in
  let to_remove = ref [] in
  Hashtbl.iter
    (fun rid m ->
      if m.deleted_vn = Some w then m.deleted_vn <- None;
      if m.created_vn = w then to_remove := rid :: !to_remove
      else if m.current_vn = w then begin
        match Version_pool.fetch t.pool ~key:(pool_key rid) ~max_vn:t.current with
        | Some (vn, before) ->
          Table.update_in_place t.table rid before;
          m.current_vn <- vn
        | None -> invalid_arg "Mv2pl: abort cannot find before-image"
      end)
    t.meta;
  List.iter
    (fun rid ->
      Table.delete t.table rid;
      Hashtbl.remove t.meta rid)
    !to_remove;
  t.writer <- None

(* Visibility and content of [rid] at [snapshot], given its current content. *)
let view t ~snapshot rid current_content =
  let m = meta_of t rid in
  if m.created_vn > snapshot then None
  else
    match m.deleted_vn with
    | Some d when d <= snapshot -> None
    | _ ->
      if m.current_vn <= snapshot then Some current_content
      else
        Option.map snd (Version_pool.fetch t.pool ~key:(pool_key rid) ~max_vn:snapshot)

let read t ~snapshot rid =
  match Table.get t.table rid with
  | None -> None
  | Some content -> view t ~snapshot rid content

let scan t ~snapshot f =
  Table.scan t.table (fun rid content ->
      match view t ~snapshot rid content with Some tuple -> f tuple | None -> ())

let gc t =
  let min_needed =
    Hashtbl.fold (fun s _ acc -> min s acc) t.snapshots t.current
  in
  let removed_tombstones = ref 0 in
  let dead = ref [] in
  Hashtbl.iter
    (fun rid m ->
      match m.deleted_vn with
      | Some d when d <= min_needed -> dead := rid :: !dead
      | Some _ | None -> ())
    t.meta;
  List.iter
    (fun rid ->
      (match Table.get t.table rid with Some _ -> Table.delete t.table rid | None -> ());
      Hashtbl.remove t.meta rid;
      incr removed_tombstones)
    !dead;
  let pool_removed = Version_pool.gc t.pool ~keep_from:min_needed in
  !removed_tombstones + pool_removed

let pool_pages t = Version_pool.page_count t.pool

let pool_entries t = Version_pool.entries t.pool
