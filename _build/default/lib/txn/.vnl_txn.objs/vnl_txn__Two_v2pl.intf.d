lib/txn/two_v2pl.mli:
