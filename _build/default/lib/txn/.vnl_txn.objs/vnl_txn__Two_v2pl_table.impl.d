lib/txn/two_v2pl_table.ml: Hashtbl List Printf Vnl_query Vnl_relation Vnl_storage
