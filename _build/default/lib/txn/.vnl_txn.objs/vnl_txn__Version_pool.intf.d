lib/txn/version_pool.mli: Vnl_relation Vnl_storage
