lib/txn/mv2pl.mli: Vnl_query Vnl_relation Vnl_storage
