lib/txn/mv2pl.ml: Hashtbl List Option Printf Version_pool Vnl_query Vnl_relation Vnl_storage
