lib/txn/version_pool.ml: Array Hashtbl List Vnl_relation Vnl_storage
