lib/txn/lock_manager.ml: Hashtbl List Option
