lib/txn/two_v2pl_table.mli: Vnl_query Vnl_relation Vnl_storage
