lib/txn/two_v2pl.ml: Int List Printf Set
