(** MV2PL transient versioning over a table.

    The multi-version baseline of §6: readers see the database as of the
    version current when their snapshot began and never block; the (single)
    writer updates tuples in place after copying before-images into the
    {!Version_pool}.  Unlike 2VNL this supports arbitrarily many versions
    (bounded by garbage collection), at the price of pool I/Os on both the
    write path and old-version reads. *)

type t

val create : Vnl_query.Table.t -> t
(** Wrap a table; the version pool lives in the same buffer pool, so all
    I/O is jointly accounted. *)

val table : t -> Vnl_query.Table.t

val current_vn : t -> int
(** Version of the latest committed state; 1 initially. *)

val begin_snapshot : t -> int
(** Snapshot number for a new reader: the current committed version. *)

val begin_writer : t -> int
(** Start the (single) maintenance writer; returns its version number
    [current_vn + 1].  Raises [Invalid_argument] if one is active. *)

val writer_insert : t -> Vnl_relation.Tuple.t -> Vnl_storage.Heap_file.rid
(** Insert; invisible to snapshots older than the writer's version. *)

val writer_update : t -> Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t -> unit
(** Stash the before-image in the pool, then overwrite in place. *)

val writer_delete : t -> Vnl_storage.Heap_file.rid -> unit
(** Logical delete: tombstoned at the writer's version, physically removed
    by {!gc}. *)

val commit_writer : t -> unit

val abort_writer : t -> unit
(** Restore every modified tuple from its before-image and drop
    writer-inserted tuples. *)

val read : t -> snapshot:int -> Vnl_storage.Heap_file.rid -> Vnl_relation.Tuple.t option
(** The tuple's content as of [snapshot]; [None] if invisible (not yet
    created, deleted, or garbage collected past the snapshot). *)

val scan : t -> snapshot:int -> (Vnl_relation.Tuple.t -> unit) -> unit
(** Visit every tuple visible at [snapshot]. *)

val reader_finished : t -> snapshot:int -> unit
(** Tell the GC a reader with this snapshot is done. *)

val gc : t -> int
(** Physically remove tombstoned tuples and pool versions no active
    snapshot can need; returns number of physical removals. *)

val pool_pages : t -> int
(** Version-pool pages — MV2PL's storage overhead. *)

val pool_entries : t -> int
