(** On-disk version pool for MV2PL transient versioning.

    Models the design of Chan et al. [CFL+82] that §6 of the paper compares
    against: before a tuple is overwritten, its before-image is copied into
    a separate pool file ("tuple writes involve an additional I/O"), and a
    reader needing an old version follows the chain into the pool
    ("readers might have to perform several I/Os to access the correct
    version").  The pool shares the database buffer pool, so those extra
    I/Os show up in the physical counters the IO experiment reports. *)

type t

type key = { page : int; slot : int }
(** Identity of the main-file tuple whose versions are chained. *)

val create : Vnl_storage.Buffer_pool.t -> Vnl_relation.Schema.t -> t
(** [create pool schema] makes an empty version pool for tuples of
    [schema]; pool records carry the version number alongside the tuple. *)

val stash : t -> key:key -> vn:int -> Vnl_relation.Tuple.t -> unit
(** Append a before-image that was current as of version [vn] to [key]'s
    chain (one pool write). *)

val fetch : t -> key:key -> max_vn:int -> (int * Vnl_relation.Tuple.t) option
(** Newest stashed version with [vn <= max_vn]; chasing the chain reads one
    pool page per hop.  [None] when no old-enough version exists (either
    the current version applies, or it was garbage collected). *)

val chain_length : t -> key:key -> int

val entries : t -> int
(** Total stashed versions. *)

val page_count : t -> int
(** Pool pages allocated — the storage-overhead metric for MV2PL. *)

val gc : t -> keep_from:int -> int
(** Drop stashed versions strictly older than any reader could need, i.e.
    versions superseded before [keep_from]; returns how many were removed. *)
