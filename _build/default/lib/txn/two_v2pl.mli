(** Two-version two-phase locking (2V2PL) commit gating.

    Under 2V2PL (Bayer et al. [BHR80], Stearns-Rosenkrantz [SR81]) a writer
    creates a second version of each tuple it modifies, readers continue to
    read the previous version and are never blocked, {e but} the previous
    versions are deleted at writer commit — so "the writer cannot commit
    until all readers that have read the previous version of modified tuples
    have committed" (§6).  This module tracks exactly that dependency: read
    sets, the single writer's write set, and which active readers gate the
    writer's commit.  The discrete-event simulator drives it to quantify the
    reader-delays-writer effect 2VNL avoids. *)

type t

val create : unit -> t

val begin_reader : t -> reader:int -> unit
(** Raises [Invalid_argument] on duplicate ids. *)

val end_reader : t -> reader:int -> unit

val begin_writer : t -> writer:int -> unit
(** Raises [Invalid_argument] if a writer is already active (warehouse
    maintenance transactions run one at a time). *)

val read : t -> reader:int -> item:int -> unit
(** Record that [reader] read [item]'s (possibly previous) version.  Never
    blocks. *)

val write : t -> writer:int -> item:int -> unit
(** Record that the writer created a new version of [item].  Never blocks
    readers. *)

val blocking_readers : t -> writer:int -> int list
(** Active readers whose read set intersects the writer's write set — the
    ones that must finish before the writer may commit.  Empty means the
    writer may commit now. *)

val commit_writer : t -> writer:int -> unit
(** Raises [Invalid_argument] if {!blocking_readers} is non-empty or the
    writer is not active.  Clears the write set. *)

val active_readers : t -> int list

val writer_active : t -> int option
