module Tuple = Vnl_relation.Tuple
module Heap_file = Vnl_storage.Heap_file
module Table = Vnl_query.Table

type pending = New_version of Tuple.t | Deleted

type t = {
  table : Table.t;
  versions : (Heap_file.rid, pending) Hashtbl.t;
  mutable inserts : Tuple.t list;  (** Writer-inserted tuples, newest first. *)
  mutable active : bool;
}

let create table = { table; versions = Hashtbl.create 64; inserts = []; active = false }

let table t = t.table

let require_writer t op =
  if not t.active then invalid_arg (Printf.sprintf "Two_v2pl_table.%s: no active writer" op)

let begin_writer t =
  if t.active then invalid_arg "Two_v2pl_table.begin_writer: writer already active";
  t.active <- true

let writer_active t = t.active

let writer_insert t tuple =
  require_writer t "writer_insert";
  t.inserts <- tuple :: t.inserts

let writer_update t rid tuple =
  require_writer t "writer_update";
  (match Hashtbl.find_opt t.versions rid with
  | Some Deleted -> invalid_arg "Two_v2pl_table.writer_update: tuple deleted by this writer"
  | Some (New_version _) | None -> ());
  Hashtbl.replace t.versions rid (New_version tuple)

let writer_delete t rid =
  require_writer t "writer_delete";
  (match Hashtbl.find_opt t.versions rid with
  | Some Deleted -> invalid_arg "Two_v2pl_table.writer_delete: tuple already deleted"
  | Some (New_version _) | None -> ());
  Hashtbl.replace t.versions rid Deleted

let read t rid = Table.get t.table rid

let writer_read t rid =
  match Hashtbl.find_opt t.versions rid with
  | Some (New_version tuple) -> Some tuple
  | Some Deleted -> None
  | None -> Table.get t.table rid

let scan_committed t f = Table.scan t.table (fun _ tuple -> f tuple)

let pending_versions t = Hashtbl.length t.versions + List.length t.inserts

let commit t =
  require_writer t "commit";
  Hashtbl.iter
    (fun rid pending ->
      match pending with
      | New_version tuple -> Table.update_in_place t.table rid tuple
      | Deleted -> Table.delete t.table rid)
    t.versions;
  List.iter (fun tuple -> ignore (Table.insert t.table tuple)) (List.rev t.inserts);
  Hashtbl.reset t.versions;
  t.inserts <- [];
  t.active <- false

let abort t =
  require_writer t "abort";
  Hashtbl.reset t.versions;
  t.inserts <- [];
  t.active <- false
