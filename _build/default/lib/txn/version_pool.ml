module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value
module Heap_file = Vnl_storage.Heap_file

type key = { page : int; slot : int }

type t = {
  base_schema : Schema.t;
  pool_schema : Schema.t;
  heap : Heap_file.t;
  chains : (key, (int * Heap_file.rid) list ref) Hashtbl.t;
      (** Newest-first chain per main-file tuple. *)
  mutable entries : int;
}

let pool_schema_of base =
  (* Pool records prefix the before-image with the version number it was
     current as of.  Key/updatable flags are irrelevant inside the pool. *)
  let plain a = Schema.attr a.Schema.name a.Schema.dtype in
  Schema.make (Schema.attr "pool_vn" Vnl_relation.Dtype.Int :: List.map plain (Schema.attributes base))

let create pool base_schema =
  let pool_schema = pool_schema_of base_schema in
  {
    base_schema;
    pool_schema;
    heap = Heap_file.create pool pool_schema;
    chains = Hashtbl.create 64;
    entries = 0;
  }

let chain t key =
  match Hashtbl.find_opt t.chains key with
  | Some c -> c
  | None ->
    let c = ref [] in
    Hashtbl.add t.chains key c;
    c

let stash t ~key ~vn tuple =
  let record = Tuple.of_array t.pool_schema (Array.of_list (Value.Int vn :: Tuple.values tuple)) in
  let rid = Heap_file.insert t.heap record in
  let c = chain t key in
  c := (vn, rid) :: !c;
  t.entries <- t.entries + 1

let decode_pool_record t record =
  match Tuple.values record with
  | Value.Int vn :: rest -> (vn, Tuple.make t.base_schema rest)
  | _ -> invalid_arg "Version_pool: corrupt pool record"

let fetch t ~key ~max_vn =
  match Hashtbl.find_opt t.chains key with
  | None -> None
  | Some c ->
    (* Chase the chain newest-first, paying one pool read per hop, until a
       version old enough for the reader appears. *)
    let rec walk = function
      | [] -> None
      | (_, rid) :: rest -> (
        match Heap_file.get t.heap rid with
        | None -> walk rest
        | Some record ->
          let vn, tuple = decode_pool_record t record in
          if vn <= max_vn then Some (vn, tuple) else walk rest)
    in
    walk !c

let chain_length t ~key =
  match Hashtbl.find_opt t.chains key with None -> 0 | Some c -> List.length !c

let entries t = t.entries

let page_count t = Heap_file.page_count t.heap

let gc t ~keep_from =
  let removed = ref 0 in
  Hashtbl.iter
    (fun _key c ->
      (* Keep every version with vn >= keep_from plus the newest older one
         (still needed by a reader exactly at keep_from). *)
      let rec split kept = function
        | [] -> (List.rev kept, [])
        | (vn, rid) :: rest ->
          if vn >= keep_from then split ((vn, rid) :: kept) rest
          else (List.rev (((vn : int), rid) :: kept), rest)
      in
      let keep, drop = split [] !c in
      List.iter
        (fun (_, rid) ->
          Heap_file.delete t.heap rid;
          incr removed)
        drop;
      c := keep)
    t.chains;
  t.entries <- t.entries - !removed;
  !removed
