type frame = { pid : int; image : bytes; mutable dirty : bool; mutable last_used : int }

type stats = {
  logical_reads : int;
  hits : int;
  misses : int;
  evictions : int;
  physical_writes : int;
}

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable tick : int;
  mutable logical_reads : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable physical_writes : int;
}

let create ?(capacity = 64) disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    disk;
    capacity;
    frames = Hashtbl.create capacity;
    tick = 0;
    logical_reads = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    physical_writes = 0;
  }

let disk t = t.disk

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_used <- t.tick

let write_back t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.pid frame.image;
    t.physical_writes <- t.physical_writes + 1;
    frame.dirty <- false
  end

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ frame acc ->
        match acc with
        | None -> Some frame
        | Some best -> if frame.last_used < best.last_used then Some frame else acc)
      t.frames None
  in
  match victim with
  | None -> ()
  | Some frame ->
    write_back t frame;
    Hashtbl.remove t.frames frame.pid;
    t.evictions <- t.evictions + 1

let load t pid =
  t.logical_reads <- t.logical_reads + 1;
  match Hashtbl.find_opt t.frames pid with
  | Some frame ->
    t.hits <- t.hits + 1;
    touch t frame;
    frame
  | None ->
    t.misses <- t.misses + 1;
    if Hashtbl.length t.frames >= t.capacity then evict_lru t;
    let frame = { pid; image = Disk.read t.disk pid; dirty = false; last_used = 0 } in
    touch t frame;
    Hashtbl.add t.frames pid frame;
    frame

let alloc_page t =
  let pid = Disk.alloc t.disk in
  if Hashtbl.length t.frames >= t.capacity then evict_lru t;
  let frame = { pid; image = Bytes.make (Disk.page_size t.disk) '\000'; dirty = false; last_used = 0 } in
  touch t frame;
  Hashtbl.add t.frames pid frame;
  pid

let with_page t pid f = f (load t pid).image

let with_page_mut t pid f =
  let frame = load t pid in
  frame.dirty <- true;
  f frame.image

let flush_all t = Hashtbl.iter (fun _ frame -> write_back t frame) t.frames

let stats t =
  {
    logical_reads = t.logical_reads;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    physical_writes = t.physical_writes;
  }

let reset_stats t =
  t.logical_reads <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.physical_writes <- 0;
  Disk.reset_stats t.disk

let drop_cache t =
  flush_all t;
  Hashtbl.reset t.frames

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "logical=%d hits=%d misses=%d evictions=%d phys_writes=%d"
    s.logical_reads s.hits s.misses s.evictions s.physical_writes
