lib/storage/disk.ml: Array Bytes Format Printf
