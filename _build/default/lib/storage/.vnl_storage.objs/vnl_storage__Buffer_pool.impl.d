lib/storage/buffer_pool.ml: Bytes Disk Format Hashtbl
