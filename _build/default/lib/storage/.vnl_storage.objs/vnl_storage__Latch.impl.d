lib/storage/latch.ml: Printf
