lib/storage/page.mli:
