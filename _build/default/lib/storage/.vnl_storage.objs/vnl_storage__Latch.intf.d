lib/storage/latch.mli:
