lib/storage/page.ml: Bytes Printf
