lib/storage/heap_file.ml: Buffer_pool Disk Format Int Latch List Page Set Vnl_relation
