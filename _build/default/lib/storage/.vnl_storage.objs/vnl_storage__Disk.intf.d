lib/storage/disk.mli: Format
