type t = { name : string; mutable held : bool; mutable acquisitions : int }

let create name = { name; held = false; acquisitions = 0 }

let acquire t =
  if t.held then failwith (Printf.sprintf "Latch %s: re-entrant acquire" t.name);
  t.held <- true;
  t.acquisitions <- t.acquisitions + 1

let release t =
  if not t.held then failwith (Printf.sprintf "Latch %s: release while free" t.name);
  t.held <- false

let with_latch t f =
  acquire t;
  match f () with
  | result ->
    release t;
    result
  | exception e ->
    release t;
    raise e

let held t = t.held

let acquisitions t = t.acquisitions
