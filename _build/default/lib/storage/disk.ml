type stats = { reads : int; writes : int; allocations : int }

type t = {
  page_size : int;
  mutable pages : bytes array;
  mutable used : int;
  mutable reads : int;
  mutable writes : int;
  mutable allocations : int;
}

let create ?(page_size = 4096) () =
  { page_size; pages = Array.make 16 Bytes.empty; used = 0; reads = 0; writes = 0; allocations = 0 }

let page_size t = t.page_size

let page_count t = t.used

let ensure_capacity t =
  if t.used >= Array.length t.pages then begin
    let bigger = Array.make (2 * Array.length t.pages) Bytes.empty in
    Array.blit t.pages 0 bigger 0 t.used;
    t.pages <- bigger
  end

let alloc t =
  ensure_capacity t;
  let pid = t.used in
  t.pages.(pid) <- Bytes.make t.page_size '\000';
  t.used <- t.used + 1;
  t.allocations <- t.allocations + 1;
  pid

let check t pid =
  if pid < 0 || pid >= t.used then
    invalid_arg (Printf.sprintf "Disk: page %d not allocated (have %d)" pid t.used)

let read t pid =
  check t pid;
  t.reads <- t.reads + 1;
  Bytes.copy t.pages.(pid)

let write t pid img =
  check t pid;
  if Bytes.length img <> t.page_size then
    invalid_arg "Disk.write: image size mismatch";
  t.writes <- t.writes + 1;
  t.pages.(pid) <- Bytes.copy img

let stats t = { reads = t.reads; writes = t.writes; allocations = t.allocations }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.allocations <- 0

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d writes=%d allocs=%d" s.reads s.writes s.allocations
