(** Short-duration latches.

    §4 of the paper requires that while a tuple is being modified a latch
    keeps readers from seeing a partly-modified record, released as soon as
    the modification completes (not at commit).  Execution here is
    deterministic and cooperative, so a latch cannot actually be contended;
    the module enforces the {e discipline} (no re-entry, release exactly
    once) and counts acquisitions so experiments can report latch traffic. *)

type t

val create : string -> t
(** [create name] labels the latch for error messages. *)

val acquire : t -> unit
(** Raises [Failure] if already held — a latch-discipline bug. *)

val release : t -> unit
(** Raises [Failure] if not held. *)

val with_latch : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val held : t -> bool

val acquisitions : t -> int
(** Total number of successful acquisitions. *)
