lib/workload/cc_sim.mli: Vnl_util
