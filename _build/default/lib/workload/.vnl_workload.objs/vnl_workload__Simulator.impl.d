lib/workload/simulator.ml: Effect List Map
