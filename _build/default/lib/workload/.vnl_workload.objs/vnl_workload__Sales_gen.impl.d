lib/workload/sales_gen.ml: Hashtbl List String Vnl_relation Vnl_util Vnl_warehouse
