lib/workload/sales_gen.mli: Vnl_relation Vnl_util Vnl_warehouse
