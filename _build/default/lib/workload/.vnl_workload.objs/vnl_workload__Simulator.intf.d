lib/workload/simulator.mli:
