lib/workload/scenario.ml: Array Buffer List Printf Sales_gen Simulator String Vnl_core Vnl_query Vnl_relation Vnl_sql Vnl_util Vnl_warehouse
