lib/workload/cc_sim.ml: Array Hashtbl List Printf Simulator Vnl_txn Vnl_util
