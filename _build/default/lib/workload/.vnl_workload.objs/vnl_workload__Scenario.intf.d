lib/workload/scenario.mli:
