open Effect
open Effect.Deep

type _ Effect.t += Delay : int -> unit Effect.t
type _ Effect.t += Await : (unit -> bool) -> unit Effect.t

module Events = Map.Make (struct
  type t = int * int  (* time, sequence *)

  let compare = compare
end)

type blocked = { name : string; pred : unit -> bool; resume : unit -> unit }

type t = {
  mutable now : int;
  mutable seq : int;
  mutable events : (unit -> unit) Events.t;
  mutable blocked : blocked list;
  mutable finished : int;
  mutable running : bool;
}

exception Stuck of string list

let create () =
  { now = 0; seq = 0; events = Events.empty; blocked = []; finished = 0; running = false }

let now t = t.now

let schedule t ~at thunk =
  let at = max at t.now in
  t.seq <- t.seq + 1;
  t.events <- Events.add (at, t.seq) thunk t.events

let delay d =
  if d < 0 then invalid_arg "Simulator.delay: negative";
  perform (Delay d)

let await pred = perform (Await pred)

(* Run one process body under the effect handler. *)
let exec t name body =
  match_with body ()
    {
      retc = (fun () -> t.finished <- t.finished + 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule t ~at:(t.now + d) (fun () -> continue k ()))
          | Await pred ->
            Some
              (fun (k : (a, unit) continuation) ->
                if pred () then schedule t ~at:t.now (fun () -> continue k ())
                else
                  t.blocked <- { name; pred; resume = (fun () -> continue k ()) } :: t.blocked)
          | _ -> None);
    }

let spawn t ?at ~name body =
  let at = match at with Some at -> at | None -> t.now in
  schedule t ~at (fun () -> exec t name body)

(* Move woken blocked processes into the event queue. *)
let promote t =
  let ready, still = List.partition (fun b -> b.pred ()) t.blocked in
  t.blocked <- still;
  List.iter (fun b -> schedule t ~at:t.now b.resume) (List.rev ready)

let run ?until t =
  t.running <- true;
  let horizon = match until with Some u -> u | None -> max_int in
  let rec loop () =
    promote t;
    match Events.min_binding_opt t.events with
    | None ->
      if t.blocked <> [] && until = None then
        raise (Stuck (List.map (fun b -> b.name) t.blocked))
    | Some ((at, _seq), _) when at > horizon -> ()
    | Some (((at, _) as key), thunk) ->
      t.events <- Events.remove key t.events;
      t.now <- at;
      thunk ();
      loop ()
  in
  loop ();
  t.running <- false

let processes_finished t = t.finished
