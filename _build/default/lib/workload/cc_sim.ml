module Stats = Vnl_util.Stats
module Xorshift = Vnl_util.Xorshift
module Lm = Vnl_txn.Lock_manager
module Two_v2pl = Vnl_txn.Two_v2pl

type scheme = S2pl | V2pl2 | Mv2pl | Vnl2

let scheme_name = function
  | S2pl -> "strict 2PL"
  | V2pl2 -> "2V2PL"
  | Mv2pl -> "MV2PL"
  | Vnl2 -> "2VNL"

let all_schemes = [ S2pl; V2pl2; Mv2pl; Vnl2 ]

type config = {
  readers : int;
  reads_per_txn : int;
  items : int;
  writer_items : int;
  read_ticks : int;
  write_ticks : int;
  arrival_gap : int;
  seed : int;
}

let default_config =
  {
    readers = 40;
    reads_per_txn = 12;
    items = 100;
    writer_items = 60;
    read_ticks = 2;
    write_ticks = 3;
    arrival_gap = 5;
    seed = 42;
  }

type report = {
  scheme : scheme;
  reader_latency : Stats.summary;
  reader_blocked : Stats.summary;
  writer_span : int;
  writer_commit_wait : int;
  lock_acquisitions : int;
  deadlock_aborts : int;
  makespan : int;
}

exception Txn_abort

(* Writer transaction id; readers are 1..readers. *)
let writer_txn = 0

(* The workload is generated once per config+seed so every scheme replays
   the identical arrival pattern and read sets. *)
let generate_workload cfg =
  let rng = Xorshift.create cfg.seed in
  Array.init cfg.readers (fun i ->
      let arrival = i * cfg.arrival_gap in
      let reads =
        List.init cfg.reads_per_txn (fun _ -> Xorshift.int rng cfg.items)
      in
      (arrival, reads))

let run cfg scheme =
  let sim = Simulator.create () in
  let workload = generate_workload cfg in
  let lm = Lm.create () in
  let cc2v = Two_v2pl.create () in
  let granted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let aborted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let latencies = ref [] and blocked_times = ref [] in
  let writer_span = ref 0 and writer_commit_wait = ref 0 in
  let deadlock_aborts = ref 0 in
  let finished_readers = ref 0 in
  let writer_done = ref false in
  let note_grants txns = List.iter (fun txn -> Hashtbl.replace granted txn ()) txns in

  (* Blocking lock acquisition for the lock-based schemes. *)
  let acquire_blocking ~txn ~item mode blocked_acc =
    match Lm.acquire lm ~txn ~item mode with
    | `Granted -> ()
    | `Blocked ->
      let t0 = Simulator.now sim in
      Simulator.await (fun () -> Hashtbl.mem granted txn || Hashtbl.mem aborted txn);
      blocked_acc := !blocked_acc + (Simulator.now sim - t0);
      Hashtbl.remove granted txn;
      if Hashtbl.mem aborted txn then begin
        Hashtbl.remove aborted txn;
        raise Txn_abort
      end
  in

  let reader i =
    let arrival, reads = workload.(i) in
    ignore arrival;
    let txn = i + 1 in
    let start = Simulator.now sim in
    let blocked_acc = ref 0 in
    let rec attempt () =
      try
        (match scheme with
        | S2pl ->
          List.iter
            (fun item ->
              acquire_blocking ~txn ~item Lm.S blocked_acc;
              Simulator.delay cfg.read_ticks)
            reads;
          note_grants (Lm.release_all lm ~txn)
        | V2pl2 ->
          Two_v2pl.begin_reader cc2v ~reader:txn;
          List.iter
            (fun item ->
              Two_v2pl.read cc2v ~reader:txn ~item;
              Simulator.delay cfg.read_ticks)
            reads;
          Two_v2pl.end_reader cc2v ~reader:txn
        | Mv2pl | Vnl2 ->
          List.iter (fun _ -> Simulator.delay cfg.read_ticks) reads)
      with Txn_abort ->
        note_grants (Lm.release_all lm ~txn);
        Simulator.delay (3 + (txn mod 5));
        attempt ()
    in
    attempt ();
    latencies := float_of_int (Simulator.now sim - start) :: !latencies;
    blocked_times := float_of_int !blocked_acc :: !blocked_times;
    incr finished_readers
  in

  let writer () =
    let start = Simulator.now sim in
    let blocked_acc = ref 0 in
    (match scheme with
    | S2pl ->
      for item = 0 to cfg.writer_items - 1 do
        (* The maintenance writer is never chosen as a deadlock victim, so
           Txn_abort cannot escape here. *)
        acquire_blocking ~txn:writer_txn ~item Lm.X blocked_acc;
        Simulator.delay cfg.write_ticks
      done;
      note_grants (Lm.release_all lm ~txn:writer_txn)
    | V2pl2 ->
      Two_v2pl.begin_writer cc2v ~writer:writer_txn;
      for item = 0 to cfg.writer_items - 1 do
        Two_v2pl.write cc2v ~writer:writer_txn ~item;
        Simulator.delay cfg.write_ticks
      done;
      let t0 = Simulator.now sim in
      Simulator.await (fun () -> Two_v2pl.blocking_readers cc2v ~writer:writer_txn = []);
      writer_commit_wait := Simulator.now sim - t0;
      Two_v2pl.commit_writer cc2v ~writer:writer_txn
    | Mv2pl | Vnl2 ->
      for _item = 0 to cfg.writer_items - 1 do
        Simulator.delay cfg.write_ticks
      done);
    writer_span := Simulator.now sim - start;
    writer_done := true
  in

  (* Deadlock detector for S2PL: abort the youngest reader in any cycle. *)
  let detector () =
    let rec loop () =
      if !finished_readers < cfg.readers || not !writer_done then begin
        Simulator.delay 4;
        (match Lm.find_deadlock lm with
        | Some cycle ->
          let victims = List.filter (fun txn -> txn <> writer_txn) cycle in
          (match List.sort (fun a b -> compare b a) victims with
          | victim :: _ ->
            incr deadlock_aborts;
            Hashtbl.replace aborted victim ();
            note_grants (Lm.release_all lm ~txn:victim)
          | [] -> ())
        | None -> ());
        loop ()
      end
    in
    loop ()
  in

  Array.iteri
    (fun i (arrival, _) ->
      Simulator.spawn sim ~at:arrival ~name:(Printf.sprintf "reader-%d" (i + 1)) (fun () ->
          reader i))
    workload;
  Simulator.spawn sim ~at:0 ~name:"maintenance-writer" writer;
  if scheme = S2pl then Simulator.spawn sim ~at:0 ~name:"deadlock-detector" detector;
  Simulator.run sim;
  let lock_acquisitions =
    match scheme with
    | S2pl -> Lm.acquisitions lm
    | V2pl2 ->
      (* 2V2PL still tracks read/write sets through its lock table. *)
      (cfg.readers * cfg.reads_per_txn) + cfg.writer_items
    | Mv2pl -> cfg.writer_items
    | Vnl2 -> 0
  in
  {
    scheme;
    reader_latency = Stats.summarize !latencies;
    reader_blocked = Stats.summarize !blocked_times;
    writer_span = !writer_span;
    writer_commit_wait = !writer_commit_wait;
    lock_acquisitions;
    deadlock_aborts = !deadlock_aborts;
    makespan = Simulator.now sim;
  }

let run_all cfg = List.map (run cfg) all_schemes
