(** Blocking comparison between concurrency-control schemes (§1, §6).

    A fixed workload — one long maintenance writer sweeping a fraction of
    the data items, and a population of reader transactions each touching a
    random subset — is replayed under four schemes:

    - {b S2PL}: conventional strict two-phase locking; readers and the
      writer block each other, deadlocks abort and restart readers.
    - {b 2V2PL}: readers never block, but the writer's commit waits for
      every reader that touched its write set.
    - {b MV2PL}: nobody blocks (version-pool I/O costs are measured by the
      separate IO experiment).
    - {b 2VNL}: nobody blocks and nobody locks.

    All runs share a seed, so the arrival pattern is identical across
    schemes and differences are due to the scheme alone. *)

type scheme = S2pl | V2pl2 | Mv2pl | Vnl2

val scheme_name : scheme -> string

val all_schemes : scheme list

type config = {
  readers : int;  (** Concurrent reader transactions over the run. *)
  reads_per_txn : int;
  items : int;  (** Distinct lockable data items. *)
  writer_items : int;  (** Items the maintenance transaction writes. *)
  read_ticks : int;  (** Simulated time per item read. *)
  write_ticks : int;  (** Simulated time per item write. *)
  arrival_gap : int;  (** Ticks between reader arrivals. *)
  seed : int;
}

val default_config : config

type report = {
  scheme : scheme;
  reader_latency : Vnl_util.Stats.summary;  (** Arrival-to-finish, per reader. *)
  reader_blocked : Vnl_util.Stats.summary;  (** Time spent waiting, per reader. *)
  writer_span : int;  (** Writer begin-to-commit, including commit wait. *)
  writer_commit_wait : int;  (** Ticks the writer waited to commit. *)
  lock_acquisitions : int;
  deadlock_aborts : int;
  makespan : int;  (** Total simulated time. *)
}

val run : config -> scheme -> report

val run_all : config -> report list
