(** Discrete-event simulator with effect-based cooperative processes.

    Processes are plain OCaml functions that perform {!delay} and {!await};
    the scheduler interleaves them deterministically on a logical clock.
    This drives the Figure 1 / Figure 2 scenarios and the blocking
    comparison of §6. *)

type t

exception Stuck of string list
(** Raised by {!run} when blocked processes remain but none can make
    progress (names of the stuck processes). *)

val create : unit -> t

val now : t -> int
(** Current simulation time in ticks. *)

val spawn : t -> ?at:int -> name:string -> (unit -> unit) -> unit
(** Register a process starting at time [at] (default: time 0, or the
    current time if the simulation is running). *)

val delay : int -> unit
(** Inside a process: consume [d >= 0] ticks of simulated time. *)

val await : (unit -> bool) -> unit
(** Inside a process: block until the predicate holds.  Predicates are
    re-evaluated after every event, so they should be cheap and depend on
    state other processes mutate. *)

val run : ?until:int -> t -> unit
(** Execute until no events remain (raising {!Stuck} if blocked processes
    never wake) or past time [until] (blocked processes are then abandoned
    silently). *)

val processes_finished : t -> int
