(** Warehouse operation scenarios: the timelines of Figures 1 and 2.

    A multi-day simulation over a real warehouse (DailySales summary view)
    with analyst sessions arriving around the clock.  One tick = one
    minute.  Three operating modes:

    - {b Offline} (Figure 1): the current commercial practice — the
      warehouse is closed to readers while the nightly maintenance
      transaction runs; sessions arriving then are turned away.
    - {b Online n} (Figure 2): nVNL — maintenance runs concurrently with
      readers (one long transaction per day); sessions never wait but can
      expire when they overlap too many maintenance transactions.
    - {b Dirty}: maintenance runs concurrently and readers use
      read-uncommitted (no versioning) — quantifies the inconsistencies
      §2's motivation describes (drill-downs that do not add up).

    Each session alternates the paper's two analyst queries (city totals,
    then a drill-down into one city) and checks that the drill-down sums to
    the total — the Example 2.1 consistency criterion. *)

type mode = Offline | Online of int | Dirty

val mode_name : mode -> string

type commit_policy =
  | Scheduled  (** Commit when the batch is applied (§2.1 default). *)
  | When_quiescent
      (** Commit only when no reader session is active: sessions never
          expire, but readers can starve the maintenance transaction
          (§2.1's alternative). *)

type config = {
  days : int;
  maintenance_start : int;  (** Minute-of-day the first maintenance txn begins. *)
  maintenance_len : int;  (** Transaction duration in minutes (per run). *)
  runs_per_day : int;
      (** Maintenance transactions per day, evenly spaced from
          [maintenance_start]; each propagates the changes accumulated since
          the previous run (2VNL's "longer and/or more frequent" knob,
          §2.1). *)
  batch_per_day : int;  (** Source changes propagated per day. *)
  session_every : int;  (** A new analyst session every this-many minutes. *)
  session_len : int;  (** Session duration in minutes. *)
  query_every : int;  (** Minutes between query pairs inside a session. *)
  commit_policy : commit_policy;
  seed : int;
}

val default_config : config
(** Figure 2's shape: maintenance 9:00 to 8:00 the next morning (1380
    minutes) over 3 days, hour-long sessions arriving every 45 minutes. *)

type report = {
  mode : mode;
  sessions_started : int;
  sessions_completed : int;
  sessions_rejected : int;  (** Turned away (offline windows). *)
  sessions_expired : int;  (** Ended early by version expiry. *)
  queries_executed : int;
  inconsistent_pairs : int;  (** Drill-downs that failed to sum to totals. *)
  reader_minutes_available : int;  (** Minutes the warehouse accepted sessions. *)
  total_minutes : int;
  maintenance_runs : int;
  commit_wait_minutes : int;  (** Total time commits waited for quiescence. *)
  avg_staleness_minutes : float;
      (** Mean age of a source change when it becomes visible to new
          sessions (accumulation wait plus transaction time). *)
  maintenance_hours : bool array;  (** Per simulated hour: maintenance active. *)
  session_hours : int array;  (** Per simulated hour: sessions in progress. *)
  final_view_groups : int;  (** DailySales group count at the end. *)
  view_matches_source : bool;  (** Final view equals source recomputation. *)
}

val run : config -> mode -> report

val availability : report -> float
(** Fraction of simulated time the warehouse accepted reader sessions. *)

val render_timeline : report -> string
(** ASCII rendering in the style of Figures 1-2: one row of maintenance
    activity and one of reader-session occupancy per day. *)
