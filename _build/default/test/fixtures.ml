(* Shared fixtures: the paper's DailySales relation and the worked-example
   states of Figures 4-6. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Schema_ext = Vnl_core.Schema_ext
module Op = Vnl_core.Op
module Database = Vnl_query.Database
module Table = Vnl_query.Table

(* Example 2.1 / Figure 3. *)
let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let base_row city state pl m d y sales =
  Tuple.make daily_sales
    [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy m d y; Value.Int sales ]

(* An extended DailySales tuple in 2VNL layout:
   (tupleVN, operation, city, state, product_line, date, total_sales,
    pre_total_sales). *)
let ext_row ext vn op city state pl m d y sales pre_sales =
  Tuple.make (Schema_ext.extended ext)
    [
      Value.Int vn;
      Op.to_value op;
      Value.Str city;
      Value.Str state;
      Value.Str pl;
      Value.date_of_mdy m d y;
      Value.Int sales;
      pre_sales;
    ]

(* Figure 4: the example relation state before the VN-5 transaction. *)
let figure4_rows ext =
  [
    ext_row ext 3 Op.Insert "San Jose" "CA" "golf equip" 10 14 96 10000 Value.Null;
    ext_row ext 4 Op.Insert "San Jose" "CA" "golf equip" 10 15 96 1500 Value.Null;
    ext_row ext 4 Op.Update "Berkeley" "CA" "racquetball" 10 14 96 12000 (Value.Int 10000);
    ext_row ext 4 Op.Delete "Novato" "CA" "rollerblades" 10 13 96 8000 (Value.Int 8000);
  ]

(* A database holding one extended DailySales table loaded with Figure 4. *)
let figure4_table () =
  let db = Database.create () in
  let ext = Schema_ext.extend daily_sales in
  let table = Database.create_table db "DailySales" (Schema_ext.extended ext) in
  List.iter (fun t -> ignore (Table.insert table t)) (figure4_rows ext);
  (db, ext, table)

(* Figure 6: expected state after the Figure 5 transaction (VN 5), as
   (vn, op, city, pl, date-day, total_sales, pre_total_sales) tuples for
   compact comparison. *)
let figure6_expected =
  [
    (5, "update", "San Jose", "golf equip", 14, Value.Int 10200, Value.Int 10000);
    (4, "insert", "San Jose", "golf equip", 15, Value.Int 1500, Value.Null);
    (5, "delete", "Berkeley", "racquetball", 14, Value.Int 12000, Value.Int 12000);
    (5, "insert", "Novato", "rollerblades", 13, Value.Int 6000, Value.Null);
    (5, "insert", "San Jose", "golf equip", 16, Value.Int 11000, Value.Null);
  ]

let summarize_ext ext tuple =
  let get name = Tuple.get_by_name (Schema_ext.extended ext) tuple name in
  let vn = match get "tupleVN" with Value.Int n -> n | _ -> -1 in
  let op = Op.to_string (Op.of_value (get "operation")) in
  let city = Value.to_string (get "city") in
  let pl = Value.to_string (get "product_line") in
  let day = match get "date" with Value.Date d -> d mod 100 | _ -> -1 in
  (vn, op, city, pl, day, get "total_sales", get "pre_total_sales")

type summary = int * string * string * string * int * Value.t * Value.t

let sort_summaries (l : summary list) = List.sort compare l

let summary_testable =
  let pp ppf (vn, op, city, pl, day, sales, pre) =
    Format.fprintf ppf "(%d,%s,%s,%s,%d,%s,%s)" vn op city pl day (Value.to_string sales)
      (Value.to_string pre)
  in
  Alcotest.testable
    (Fmt.list ~sep:Fmt.semi pp)
    (fun a b ->
      List.equal
        (fun (v1, o1, c1, p1, d1, s1, r1) (v2, o2, c2, p2, d2, s2, r2) ->
          v1 = v2 && o1 = o2 && c1 = c2 && p1 = p2 && d1 = d2 && Value.equal s1 s2
          && Value.equal r1 r2)
        a b)

let base_testable =
  Alcotest.testable
    (Fmt.list ~sep:Fmt.semi (fun ppf t -> Tuple.pp daily_sales ppf t))
    (fun a b -> List.equal Tuple.equal a b)
