(* Tests for the warehouse layer: view definitions, delta aggregation,
   incremental summary maintenance vs. full recomputation. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module View_def = Vnl_warehouse.View_def
module Delta = Vnl_warehouse.Delta
module Source = Vnl_warehouse.Source
module Warehouse = Vnl_warehouse.Warehouse
module Twovnl = Vnl_core.Twovnl
module Sales_gen = Vnl_workload.Sales_gen
module Xorshift = Vnl_util.Xorshift

let check = Alcotest.check

let sale city pl day amount =
  Tuple.make Sales_gen.sales_schema
    [ Value.Str city; Value.Str "CA"; Value.Str pl; Sales_gen.date_of_day day; Value.Int amount ]

let view = Sales_gen.daily_sales_view ()

let test_view_target_schema () =
  let target = View_def.target_schema view in
  check (Alcotest.list Alcotest.string) "columns"
    [ "city"; "state"; "product_line"; "date"; "total_sales"; "row_count" ]
    (Schema.names target);
  check (Alcotest.list Alcotest.int) "key" [ 0; 1; 2; 3 ] (Schema.key_indices target);
  check (Alcotest.list Alcotest.int) "updatable aggregates" [ 4; 5 ]
    (Schema.updatable_indices target)

let test_view_without_count_matches_paper () =
  let v = Sales_gen.daily_sales_view ~with_count:false () in
  let target = View_def.target_schema v in
  (* Without the hidden count, the schema is exactly the paper's DailySales:
     42 bytes per tuple (Figure 3). *)
  check Alcotest.int "42 bytes" 42 (Schema.width target)

let test_view_rejects_bad_defs () =
  let expect_invalid f =
    Alcotest.(check bool) "raises" true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  expect_invalid (fun () ->
      View_def.make ~name:"v" ~source:Sales_gen.sales_schema ~group_by:[]
        ~aggregates:[ ("s", View_def.Sum "amount") ] ());
  expect_invalid (fun () ->
      View_def.make ~name:"v" ~source:Sales_gen.sales_schema ~group_by:[ "nope" ]
        ~aggregates:[] ());
  expect_invalid (fun () ->
      View_def.make ~name:"v" ~source:Sales_gen.sales_schema ~group_by:[ "city" ]
        ~aggregates:[ ("s", View_def.Sum "city") ] ())

let test_delta_netting () =
  let s1 = sale "San Jose" "golf equip" 0 100 in
  let s2 = sale "San Jose" "golf equip" 0 50 in
  let s3 = sale "Berkeley" "tennis" 0 75 in
  let deltas = Delta.net_group_deltas view [ Insert s1; Insert s2; Insert s3; Delete s2 ] in
  check Alcotest.int "two groups" 2 (List.length deltas);
  let sj = List.hd deltas in
  Alcotest.(check bool) "net sum 100" true
    (Value.equal (List.hd sj.Delta.agg_delta) (Value.Int 100));
  check Alcotest.int "net count 1" 1 sj.Delta.count_delta

let test_delta_update_is_delete_plus_insert () =
  let old_sale = sale "San Jose" "golf equip" 0 100 in
  let new_sale = sale "San Jose" "golf equip" 0 140 in
  match Delta.net_group_deltas view [ Update (old_sale, new_sale) ] with
  | [ d ] ->
    Alcotest.(check bool) "sum +40" true (Value.equal (List.hd d.Delta.agg_delta) (Value.Int 40));
    check Alcotest.int "count 0" 0 d.Delta.count_delta
  | _ -> Alcotest.fail "one group expected"

let test_delta_cancelling_batch_drops_group () =
  let s1 = sale "San Jose" "golf equip" 0 100 in
  check Alcotest.int "no net change" 0
    (List.length (Delta.net_group_deltas view [ Insert s1; Delete s1 ]))

let test_source_apply_and_recompute () =
  let src = Source.create Sales_gen.sales_schema in
  Source.apply src
    [ Insert (sale "San Jose" "golf equip" 0 100);
      Insert (sale "San Jose" "golf equip" 0 50);
      Insert (sale "Berkeley" "tennis" 1 75) ];
  check Alcotest.int "rows" 3 (Source.row_count src);
  let computed = Source.compute_view src view in
  check Alcotest.int "two groups" 2 (List.length computed);
  let target = View_def.target_schema view in
  let sj =
    List.find
      (fun t -> Value.equal (Tuple.get_by_name target t "city") (Value.Str "San Jose"))
      computed
  in
  Alcotest.(check bool) "sum 150" true
    (Value.equal (Tuple.get_by_name target sj "total_sales") (Value.Int 150));
  Alcotest.(check bool) "count 2" true
    (Value.equal (Tuple.get_by_name target sj "row_count") (Value.Int 2))

let test_source_delete_absent_rejected () =
  let src = Source.create Sales_gen.sales_schema in
  Alcotest.(check bool) "raises" true
    (try Source.apply src [ Delete (sale "X" "y" 0 1) ]; false
     with Invalid_argument _ -> true)

let sorted_view rows = List.sort Tuple.compare rows

let refresh_and_compare wh =
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  let got = Warehouse.read_view wh s "DailySales" in
  Warehouse.end_session wh s;
  let expected = Warehouse.expected_view wh "DailySales" in
  Alcotest.(check bool) "incremental = recompute" true
    (List.equal Tuple.equal (sorted_view got) (sorted_view expected))

let test_float_aggregates () =
  let src_schema =
    Schema.make [ Schema.attr "grp" (Dtype.Str 4); Schema.attr "x" Dtype.Float ]
  in
  let v =
    View_def.make ~name:"F" ~source:src_schema ~group_by:[ "grp" ]
      ~aggregates:[ ("total", View_def.Sum "x") ]
      ()
  in
  let wh = Warehouse.create [ v ] in
  let row g x = Tuple.make src_schema [ Value.Str g; Value.Float x ] in
  Warehouse.queue_changes wh ~view:"F"
    [ Insert (row "a" 1.5); Insert (row "a" 2.25); Insert (row "b" 10.0) ];
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  let target = View_def.target_schema v in
  let rows = Warehouse.read_view wh s "F" in
  let total g =
    List.find_map
      (fun t ->
        if Value.equal (Tuple.get_by_name target t "grp") (Value.Str g) then
          Some (Tuple.get_by_name target t "total")
        else None)
      rows
  in
  (match total "a" with
  | Some (Value.Float f) -> Alcotest.(check (float 1e-9)) "a sums" 3.75 f
  | _ -> Alcotest.fail "a missing");
  match total "b" with
  | Some (Value.Float f) -> Alcotest.(check (float 1e-9)) "b sums" 10.0 f
  | _ -> Alcotest.fail "b missing"

let test_incremental_matches_recompute () =
  let wh = Warehouse.create [ view ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    [ Insert (sale "San Jose" "golf equip" 0 100);
      Insert (sale "San Jose" "golf equip" 1 50);
      Insert (sale "Berkeley" "tennis" 0 75) ];
  refresh_and_compare wh;
  (* A second refresh with mixed changes, including a full group removal. *)
  Warehouse.queue_changes wh ~view:"DailySales"
    [ Delete (sale "Berkeley" "tennis" 0 75);
      Update (sale "San Jose" "golf equip" 0 100, sale "San Jose" "golf equip" 0 130);
      Insert (sale "Novato" "rollerblades" 2 60) ];
  refresh_and_compare wh

let test_group_disappears_at_zero_support () =
  let wh = Warehouse.create [ view ] in
  Warehouse.queue_changes wh ~view:"DailySales" [ Insert (sale "Berkeley" "tennis" 0 75) ];
  ignore (Warehouse.refresh wh);
  Warehouse.queue_changes wh ~view:"DailySales" [ Delete (sale "Berkeley" "tennis" 0 75) ];
  let outcomes = Warehouse.refresh wh in
  (match outcomes with
  | [ o ] -> check Alcotest.int "group deleted" 1 o.Vnl_warehouse.Summary.groups_deleted
  | _ -> Alcotest.fail "one view");
  let s = Warehouse.begin_session wh in
  check Alcotest.int "view empty" 0 (List.length (Warehouse.read_view wh s "DailySales"))

let test_reader_isolated_during_refresh () =
  let wh = Warehouse.create [ view ] in
  Warehouse.queue_changes wh ~view:"DailySales" [ Insert (sale "San Jose" "golf equip" 0 100) ];
  ignore (Warehouse.refresh wh);
  let s = Warehouse.begin_session wh in
  Warehouse.queue_changes wh ~view:"DailySales" [ Insert (sale "San Jose" "golf equip" 0 11) ];
  ignore (Warehouse.refresh wh);
  (* The session began before the refresh and must still see the old sum. *)
  let rows = Warehouse.read_view wh s "DailySales" in
  let target = View_def.target_schema view in
  (match rows with
  | [ t ] ->
    Alcotest.(check bool) "old sum" true
      (Value.equal (Tuple.get_by_name target t "total_sales") (Value.Int 100))
  | _ -> Alcotest.fail "one group");
  let s2 = Warehouse.begin_session wh in
  match Warehouse.read_view wh s2 "DailySales" with
  | [ t ] ->
    Alcotest.(check bool) "new sum" true
      (Value.equal (Tuple.get_by_name target t "total_sales") (Value.Int 111))
  | _ -> Alcotest.fail "one group"

(* Property: random batches; incremental maintenance equals recomputation
   after every refresh. *)
let qcheck_incremental_equals_recompute =
  QCheck.Test.make ~name:"incremental maintenance = full recompute" ~count:40
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Xorshift.create seed in
      let wh = Warehouse.create [ view ] in
      let ok = ref true in
      for day = 0 to 4 do
        let src = Warehouse.source wh "DailySales" in
        let batch =
          Sales_gen.gen_batch rng src ~day
            ~inserts:(5 + Xorshift.int rng 20)
            ~updates:(Xorshift.int rng 8)
            ~deletes:(Xorshift.int rng 6)
        in
        Warehouse.queue_changes wh ~view:"DailySales" batch;
        ignore (Warehouse.refresh wh);
        let s = Warehouse.begin_session wh in
        let got = Warehouse.read_view wh s "DailySales" in
        Warehouse.end_session wh s;
        let expected = Warehouse.expected_view wh "DailySales" in
        if not (List.equal Tuple.equal (sorted_view got) (sorted_view expected)) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "view target schema" `Quick test_view_target_schema;
    Alcotest.test_case "DailySales sans count = 42 bytes" `Quick
      test_view_without_count_matches_paper;
    Alcotest.test_case "bad view definitions rejected" `Quick test_view_rejects_bad_defs;
    Alcotest.test_case "delta netting" `Quick test_delta_netting;
    Alcotest.test_case "update = delete + insert" `Quick test_delta_update_is_delete_plus_insert;
    Alcotest.test_case "cancelling batch drops group" `Quick
      test_delta_cancelling_batch_drops_group;
    Alcotest.test_case "source apply/recompute" `Quick test_source_apply_and_recompute;
    Alcotest.test_case "source delete absent rejected" `Quick test_source_delete_absent_rejected;
    Alcotest.test_case "float aggregates" `Quick test_float_aggregates;
    Alcotest.test_case "incremental matches recompute" `Quick test_incremental_matches_recompute;
    Alcotest.test_case "group removed at zero support" `Quick
      test_group_disappears_at_zero_support;
    Alcotest.test_case "reader isolated during refresh" `Quick
      test_reader_isolated_during_refresh;
    QCheck_alcotest.to_alcotest qcheck_incremental_equals_recompute;
  ]
