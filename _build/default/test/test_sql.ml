(* Tests for the SQL lexer, parser, and pretty-printer. *)

module Value = Vnl_relation.Value
module Ast = Vnl_sql.Ast
module Lexer = Vnl_sql.Lexer
module Parser = Vnl_sql.Parser
module Pp = Vnl_sql.Pp

let check = Alcotest.check

let roundtrips src =
  (* parse -> print -> parse must be a fixpoint. *)
  let stmt = Parser.parse src in
  let printed = Pp.statement_to_string stmt in
  let stmt2 = Parser.parse printed in
  let printed2 = Pp.statement_to_string stmt2 in
  check Alcotest.string (Printf.sprintf "roundtrip of %s" src) printed printed2

let test_lexer_basic () =
  let tokens = Lexer.tokenize "SELECT x FROM t WHERE y <= 10" in
  check Alcotest.int "token count" 9 (List.length tokens)

let test_lexer_string_escape () =
  match Lexer.tokenize "'it''s'" with
  | [ Lexer.STRING s; Lexer.EOF ] -> check Alcotest.string "unescaped" "it's" s
  | _ -> Alcotest.fail "bad tokens"

let test_lexer_param () =
  match Lexer.tokenize ":sessionVN" with
  | [ Lexer.PARAM p; Lexer.EOF ] -> check Alcotest.string "param" "sessionVN" p
  | _ -> Alcotest.fail "bad tokens"

let test_lexer_keywords_case_insensitive () =
  match Lexer.tokenize "select Select SELECT" with
  | [ Lexer.KEYWORD a; Lexer.KEYWORD b; Lexer.KEYWORD c; Lexer.EOF ] ->
    List.iter (fun s -> check Alcotest.string "upper" "SELECT" s) [ a; b; c ]
  | _ -> Alcotest.fail "bad tokens"

let test_lexer_neq_spellings () =
  match Lexer.tokenize "a <> b != c" with
  | [ _; Lexer.SYMBOL s1; _; Lexer.SYMBOL s2; _; Lexer.EOF ] ->
    check Alcotest.string "<>" "<>" s1;
    check Alcotest.string "!= normalized" "<>" s2
  | _ -> Alcotest.fail "bad tokens"

let test_lexer_error () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Lexer.tokenize "a ? b");
       false
     with Lexer.Lex_error _ -> true)

(* The paper's first analyst query (Example 2.1). *)
let test_parse_paper_query1 () =
  let s =
    Parser.parse_select
      "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state"
  in
  check Alcotest.int "items" 3 (List.length s.Ast.items);
  check Alcotest.int "group by" 2 (List.length s.Ast.group_by);
  match List.nth s.Ast.items 2 with
  | Ast.Item (Ast.Agg (Ast.Sum, Some (Ast.Col (None, "total_sales"))), None) -> ()
  | _ -> Alcotest.fail "SUM not parsed"

(* The paper's drill-down query (Example 2.1). *)
let test_parse_paper_query2 () =
  let s =
    Parser.parse_select
      "SELECT product_line, SUM(total_sales) FROM DailySales \
       WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line"
  in
  match s.Ast.where with
  | Some (Ast.Binop (Ast.And, _, _)) -> ()
  | _ -> Alcotest.fail "WHERE not parsed as conjunction"

let test_parse_case () =
  let e =
    Parser.parse_expr
      "CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE pre_total_sales END"
  in
  match e with
  | Ast.Case ([ (Ast.Binop (Ast.Ge, Ast.Param "sessionVN", Ast.Col (None, "tupleVN")), _) ], Some _)
    -> ()
  | _ -> Alcotest.fail "CASE not parsed"

let test_parse_insert () =
  match Parser.parse "INSERT INTO t VALUES (1, 'x', NULL), (2, 'y', 3.5)" with
  | Ast.Insert { table = "t"; columns = None; rows } ->
    check Alcotest.int "rows" 2 (List.length rows)
  | _ -> Alcotest.fail "INSERT not parsed"

let test_parse_insert_columns () =
  match Parser.parse "INSERT INTO t (a, b) VALUES (1, 2)" with
  | Ast.Insert { columns = Some [ "a"; "b" ]; _ } -> ()
  | _ -> Alcotest.fail "column list not parsed"

let test_parse_update () =
  match
    Parser.parse
      "UPDATE DailySales SET total_sales = total_sales + 1000 \
       WHERE city = 'San Jose' AND date = DATE '10/13/96'"
  with
  | Ast.Update { table = "DailySales"; sets = [ ("total_sales", _) ]; where = Some _ } -> ()
  | _ -> Alcotest.fail "UPDATE not parsed"

let test_parse_delete () =
  match Parser.parse "DELETE FROM t WHERE a IS NOT NULL" with
  | Ast.Delete { table = "t"; where = Some (Ast.Is_not_null _) } -> ()
  | _ -> Alcotest.fail "DELETE not parsed"

let test_parse_date_formats () =
  (match Parser.parse_expr "DATE '10/14/96'" with
  | Ast.Lit (Value.Date 19961014) -> ()
  | _ -> Alcotest.fail "mm/dd/yy");
  match Parser.parse_expr "DATE '1996-10-14'" with
  | Ast.Lit (Value.Date 19961014) -> ()
  | _ -> Alcotest.fail "iso"

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3). *)
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Lit (Value.Int 1), Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_bool_precedence () =
  (* a OR b AND c parses as a OR (b AND c). *)
  match Parser.parse_expr "a = 1 OR b = 2 AND c = 3" with
  | Ast.Binop (Ast.Or, _, Ast.Binop (Ast.And, _, _)) -> ()
  | _ -> Alcotest.fail "boolean precedence wrong"

let test_parse_order_by () =
  let s = Parser.parse_select "SELECT a FROM t ORDER BY a DESC, b" in
  match s.Ast.order_by with
  | [ (_, Ast.Desc); (_, Ast.Asc) ] -> ()
  | _ -> Alcotest.fail "ORDER BY directions"

let test_parse_qualified_and_alias () =
  let s = Parser.parse_select "SELECT d.city FROM DailySales d" in
  (match s.Ast.from with
  | [ ("DailySales", Some "d") ] -> ()
  | _ -> Alcotest.fail "alias");
  match s.Ast.items with
  | [ Ast.Item (Ast.Col (Some "d", "city"), None) ] -> ()
  | _ -> Alcotest.fail "qualified column"

let test_parse_error_cases () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (Printf.sprintf "rejects %s" src) true
        (try
           ignore (Parser.parse src);
           false
         with Parser.Parse_error _ | Lexer.Lex_error _ -> true))
    [
      "SELECT";
      "SELECT FROM t";
      "SELECT a FROM";
      "INSERT INTO";
      "UPDATE t SET";
      "DELETE t";
      "SELECT a FROM t WHERE";
      "SELECT a FROM t GROUP";
      "SELECT CASE END FROM t";
      "SELECT a FROM t extra garbage (";
    ]

let test_parse_in_between_like () =
  (match Parser.parse_expr "city IN ('a', 'b', 'c')" with
  | Ast.In (Ast.Col (None, "city"), [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "IN not parsed");
  (match Parser.parse_expr "total_sales BETWEEN 100 AND 200" with
  | Ast.Between (_, Ast.Lit (Value.Int 100), Ast.Lit (Value.Int 200)) -> ()
  | _ -> Alcotest.fail "BETWEEN not parsed");
  (match Parser.parse_expr "city LIKE 'San%'" with
  | Ast.Like (_, "San%") -> ()
  | _ -> Alcotest.fail "LIKE not parsed");
  (match Parser.parse_expr "city NOT IN ('a')" with
  | Ast.Unop (Ast.Not, Ast.In _) -> ()
  | _ -> Alcotest.fail "NOT IN not parsed");
  (match Parser.parse_expr "x NOT BETWEEN 1 AND 2 AND y = 1" with
  | Ast.Binop (Ast.And, Ast.Unop (Ast.Not, Ast.Between _), _) -> ()
  | _ -> Alcotest.fail "NOT BETWEEN precedence")

let test_pp_roundtrips () =
  List.iter roundtrips
    [
      "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state";
      "SELECT * FROM t WHERE a <> 3 AND NOT b = 2 OR c IS NULL";
      "SELECT DISTINCT a AS x FROM t ORDER BY x DESC";
      "INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, NULL)";
      "UPDATE t SET a = a + 1, b = CASE WHEN a > 0 THEN 1 ELSE 0 END WHERE c < 5";
      "DELETE FROM t WHERE d = DATE '1996-10-14'";
      "SELECT COUNT(*) FROM t HAVING COUNT(*) > 2";
      "SELECT a + b * c - -d FROM t WHERE (a + b) * c = 1";
      "SELECT SUM(CASE WHEN :vn >= tupleVN THEN v ELSE pv END) FROM t";
      "SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 1 AND 9 OR c LIKE 'x%_y'";
      "SELECT a FROM t WHERE a NOT IN (1) AND b NOT LIKE '%z'";
    ]

let test_pp_parenthesization () =
  (* (a + b) * c must keep its parens; a + (b * c) must not gain any. *)
  let e1 = Parser.parse_expr "(a + b) * c" in
  check Alcotest.string "kept" "(a + b) * c" (Pp.expr_to_string e1);
  let e2 = Parser.parse_expr "a + b * c" in
  check Alcotest.string "minimal" "a + b * c" (Pp.expr_to_string e2)

let test_ast_map_columns () =
  let e = Parser.parse_expr "a + b" in
  let renamed =
    Ast.map_columns (fun q name -> Ast.Col (q, String.uppercase_ascii name)) e
  in
  check Alcotest.string "renamed" "A + B" (Pp.expr_to_string renamed)

let test_ast_conj () =
  let extra = Parser.parse_expr "x = 1" in
  check Alcotest.string "none" "x = 1" (Pp.expr_to_string (Ast.conj None extra));
  let w = Parser.parse_expr "y = 2" in
  check Alcotest.string "and" "y = 2 AND x = 1" (Pp.expr_to_string (Ast.conj (Some w) extra))

let test_ast_has_aggregate () =
  Alcotest.(check bool) "sum" true (Ast.has_aggregate (Parser.parse_expr "SUM(x) + 1"));
  Alcotest.(check bool) "plain" false (Ast.has_aggregate (Parser.parse_expr "x + 1"))

(* Property: pretty-printing any parsed statement re-parses to the same text. *)
let qcheck_pp_fixpoint =
  let sources =
    [|
      "SELECT a FROM t";
      "SELECT a, b FROM t WHERE a = 1";
      "SELECT SUM(a) FROM t GROUP BY b";
      "SELECT a FROM t WHERE a >= 1 AND b <= 2 OR NOT c = 3";
      "INSERT INTO t VALUES (1, 2)";
      "UPDATE t SET a = 1 WHERE b IS NULL";
      "DELETE FROM t";
      "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t";
      "SELECT a FROM t, s WHERE t.x = s.y";
      "SELECT -a + 3 * (b - 2) FROM t ORDER BY a";
    |]
  in
  QCheck.Test.make ~name:"pp/parse fixpoint" ~count:50 (QCheck.make (QCheck.Gen.oneofa sources))
    (fun src ->
      let p1 = Pp.statement_to_string (Parser.parse src) in
      let p2 = Pp.statement_to_string (Parser.parse p1) in
      String.equal p1 p2)

let suite =
  [
    Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer string escape" `Quick test_lexer_string_escape;
    Alcotest.test_case "lexer param" `Quick test_lexer_param;
    Alcotest.test_case "lexer keyword case" `Quick test_lexer_keywords_case_insensitive;
    Alcotest.test_case "lexer neq spellings" `Quick test_lexer_neq_spellings;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse paper query 1" `Quick test_parse_paper_query1;
    Alcotest.test_case "parse paper query 2" `Quick test_parse_paper_query2;
    Alcotest.test_case "parse CASE" `Quick test_parse_case;
    Alcotest.test_case "parse INSERT" `Quick test_parse_insert;
    Alcotest.test_case "parse INSERT columns" `Quick test_parse_insert_columns;
    Alcotest.test_case "parse UPDATE" `Quick test_parse_update;
    Alcotest.test_case "parse DELETE" `Quick test_parse_delete;
    Alcotest.test_case "parse date formats" `Quick test_parse_date_formats;
    Alcotest.test_case "arithmetic precedence" `Quick test_parse_precedence;
    Alcotest.test_case "boolean precedence" `Quick test_parse_bool_precedence;
    Alcotest.test_case "ORDER BY" `Quick test_parse_order_by;
    Alcotest.test_case "qualified names and aliases" `Quick test_parse_qualified_and_alias;
    Alcotest.test_case "parser rejects malformed input" `Quick test_parse_error_cases;
    Alcotest.test_case "IN/BETWEEN/LIKE parse" `Quick test_parse_in_between_like;
    Alcotest.test_case "pp roundtrips" `Quick test_pp_roundtrips;
    Alcotest.test_case "pp parenthesization" `Quick test_pp_parenthesization;
    Alcotest.test_case "ast map_columns" `Quick test_ast_map_columns;
    Alcotest.test_case "ast conj" `Quick test_ast_conj;
    Alcotest.test_case "ast has_aggregate" `Quick test_ast_has_aggregate;
    QCheck_alcotest.to_alcotest qcheck_pp_fixpoint;
  ]
