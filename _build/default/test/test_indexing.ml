(* Tests for secondary indexes, the access-path planner, and the §4.3
   story: indexes on group-by attributes keep working under the 2VNL
   rewrite, while predicates on updatable attributes (wrapped in CASE) fall
   back to scans. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Twovnl = Vnl_core.Twovnl
module Rewrite = Vnl_core.Rewrite
module Xorshift = Vnl_util.Xorshift

let check = Alcotest.check

let schema =
  Schema.make
    [
      Schema.attr ~key:true "id" Dtype.Int;
      Schema.attr "city" (Dtype.Str 16);
      Schema.attr ~updatable:true "v" Dtype.Int;
    ]

let mk id city v = Tuple.make schema [ Value.Int id; Value.Str city; Value.Int v ]

let cities = [| "sj"; "bk"; "nv"; "fr" |]

let loaded_table () =
  let db = Database.create () in
  let t = Database.create_table db "T" schema in
  let rng = Xorshift.create 7 in
  for id = 1 to 200 do
    ignore (Table.insert t (mk id cities.(Xorshift.int rng 4) (Xorshift.int rng 50)))
  done;
  (db, t)

let test_index_lookup_matches_scan () =
  let _db, t = loaded_table () in
  Table.create_index t ~name:"idx_city" [ "city" ];
  Array.iter
    (fun city ->
      let via_index = List.length (Table.index_lookup t ~name:"idx_city" [ Value.Str city ]) in
      let via_scan = ref 0 in
      Table.scan t (fun _ tuple ->
          if Value.equal (Tuple.get tuple 1) (Value.Str city) then incr via_scan);
      check Alcotest.int city !via_scan via_index)
    cities

let test_index_maintained_on_update_delete () =
  let _db, t = loaded_table () in
  Table.create_index t ~name:"idx_city" [ "city" ];
  let sj_before = List.length (Table.index_lookup t ~name:"idx_city" [ Value.Str "sj" ]) in
  (* Move one sj row to bk. *)
  (match Table.find_by_key t [ Value.Int 1 ] with
  | Some (rid, tuple) when Value.equal (Tuple.get tuple 1) (Value.Str "sj") ->
    Table.update_in_place t rid (Tuple.set tuple 1 (Value.Str "bk"));
    check Alcotest.int "one fewer sj" (sj_before - 1)
      (List.length (Table.index_lookup t ~name:"idx_city" [ Value.Str "sj" ]))
  | Some (rid, tuple) ->
    (* id 1 was not sj; delete it instead and check its city's postings. *)
    let city = Tuple.get tuple 1 in
    let before = List.length (Table.index_lookup t ~name:"idx_city" [ city ]) in
    Table.delete t rid;
    check Alcotest.int "posting removed" (before - 1)
      (List.length (Table.index_lookup t ~name:"idx_city" [ city ]))
  | None -> Alcotest.fail "id 1 missing")

let test_index_created_after_load () =
  let _db, t = loaded_table () in
  (* Index built over existing rows must be complete. *)
  Table.create_index t ~name:"idx_v" [ "v" ];
  let total =
    List.fold_left
      (fun acc v -> acc + List.length (Table.index_lookup t ~name:"idx_v" [ Value.Int v ]))
      0
      (List.init 50 (fun v -> v))
  in
  check Alcotest.int "all rows indexed" 200 total

let test_index_errors () =
  let _db, t = loaded_table () in
  Table.create_index t ~name:"i" [ "city" ];
  let expect_invalid f =
    Alcotest.(check bool) "raises" true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Table.create_index t ~name:"i" [ "city" ]);
  expect_invalid (fun () -> Table.create_index t ~name:"j" [ "nope" ]);
  expect_invalid (fun () -> Table.create_index t ~name:"k" []);
  Alcotest.(check bool) "unknown index lookup" true
    (try ignore (Table.index_lookup t ~name:"zzz" [ Value.Str "sj" ]); false
     with Not_found -> true)

let test_planner_chooses_paths () =
  let db, t = loaded_table () in
  Table.create_index t ~name:"idx_city" [ "city" ];
  let explain sql = Executor.explain_string db sql in
  check Alcotest.string "unique probe" "T: unique-key probe"
    (explain "SELECT v FROM T WHERE id = 5");
  check Alcotest.string "index scan" "T: index scan via idx_city"
    (explain "SELECT v FROM T WHERE city = 'sj'");
  check Alcotest.string "full scan" "T: full scan" (explain "SELECT v FROM T WHERE v > 3");
  check Alcotest.string "index with extra residual" "T: index scan via idx_city"
    (explain "SELECT v FROM T WHERE city = 'sj' AND v > 3");
  (* Disjunction disables the conjunct analysis. *)
  check Alcotest.string "or disables" "T: full scan"
    (explain "SELECT v FROM T WHERE city = 'sj' OR v > 3")

let test_planner_results_equal_scan () =
  let db, t = loaded_table () in
  let before = Executor.query_string db "SELECT id FROM T WHERE city = 'sj' ORDER BY id" in
  Table.create_index t ~name:"idx_city" [ "city" ];
  let after = Executor.query_string db "SELECT id FROM T WHERE city = 'sj' ORDER BY id" in
  Alcotest.(check bool) "same result" true (Executor.result_equal before after)

let test_planner_param_probe () =
  let db, t = loaded_table () in
  Table.create_index t ~name:"idx_city" [ "city" ];
  let r =
    Executor.query_string db
      ~params:[ ("c", Value.Str "sj") ]
      "SELECT COUNT(*) FROM T WHERE city = :c"
  in
  let via_scan = ref 0 in
  Table.scan t (fun _ tuple ->
      if Value.equal (Tuple.get tuple 1) (Value.Str "sj") then incr via_scan);
  match r.Executor.rows with
  | [ [ Value.Int n ] ] -> check Alcotest.int "param-bound index probe" !via_scan n
  | _ -> Alcotest.fail "shape"

(* §4.3: the rewritten reader query still uses a group-by index; a predicate
   on an updatable attribute becomes CASE and cannot. *)
let test_rewrite_preserves_index_use () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  let handle = Twovnl.register_table wh ~name:"DailySales" Fixtures.daily_sales in
  Twovnl.load_initial wh "DailySales"
    [ Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
      Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000 ];
  Table.create_index (Twovnl.table handle) ~name:"idx_city" [ "city" ];
  let rewritten sql =
    Rewrite.reader_select ~lookup:(Twovnl.lookup wh) (Vnl_sql.Parser.parse_select sql)
  in
  let explain sql =
    Executor.explain db ~params:[ ("sessionVN", Value.Int 1) ] (rewritten sql)
  in
  check Alcotest.string "group-by attribute predicate keeps the index"
    "DailySales: index scan via idx_city"
    (explain "SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose'");
  check Alcotest.string "updatable-attribute predicate cannot (CASE)"
    "DailySales: full scan"
    (explain "SELECT city FROM DailySales WHERE total_sales = 10000");
  (* And the indexed rewritten query returns the right answer. *)
  let s = Twovnl.Session.begin_ wh in
  let r =
    Twovnl.Session.query wh s "SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose'"
  in
  match r.Executor.rows with
  | [ [ Value.Int 10000 ] ] -> ()
  | _ -> Alcotest.fail "wrong answer through index"

let qcheck_index_agrees_with_scan =
  QCheck.Test.make ~name:"index lookups = scan filter (random data)" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Xorshift.create seed in
      let db = Database.create () in
      let t = Database.create_table db "T" schema in
      Table.create_index t ~name:"ix" [ "v" ];
      let live = ref [] in
      let ok = ref true in
      for id = 1 to 120 do
        let v = Xorshift.int rng 8 in
        let rid = Table.insert t (mk id cities.(Xorshift.int rng 4) v) in
        live := (rid, id) :: !live;
        (* Randomly update or delete earlier rows. *)
        if Xorshift.chance rng 0.2 && !live <> [] then begin
          let rid, _ = Xorshift.pick_list rng !live in
          match Table.get t rid with
          | Some tuple ->
            if Xorshift.bool rng then
              Table.update_in_place t rid (Tuple.set tuple 2 (Value.Int (Xorshift.int rng 8)))
            else begin
              Table.delete t rid;
              live := List.filter (fun (r, _) -> not (Vnl_storage.Heap_file.rid_equal r rid)) !live
            end
          | None -> ()
        end
      done;
      for v = 0 to 7 do
        let via_index = List.length (Table.index_lookup t ~name:"ix" [ Value.Int v ]) in
        let via_scan = ref 0 in
        Table.scan t (fun _ tuple ->
            if Value.equal (Tuple.get tuple 2) (Value.Int v) then incr via_scan);
        if via_index <> !via_scan then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "index lookup = scan" `Quick test_index_lookup_matches_scan;
    Alcotest.test_case "index maintained on update/delete" `Quick
      test_index_maintained_on_update_delete;
    Alcotest.test_case "index built after load" `Quick test_index_created_after_load;
    Alcotest.test_case "index error cases" `Quick test_index_errors;
    Alcotest.test_case "planner access paths" `Quick test_planner_chooses_paths;
    Alcotest.test_case "planner preserves results" `Quick test_planner_results_equal_scan;
    Alcotest.test_case "parameter-bound probe" `Quick test_planner_param_probe;
    Alcotest.test_case "rewrite keeps group-by index (§4.3)" `Quick
      test_rewrite_preserves_index_use;
    QCheck_alcotest.to_alcotest qcheck_index_agrees_with_scan;
  ]
