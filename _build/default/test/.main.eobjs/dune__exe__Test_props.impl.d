test/test_props.ml: Alcotest List Oracle Printf QCheck QCheck_alcotest Vnl_core Vnl_query Vnl_relation Vnl_sql Vnl_util
