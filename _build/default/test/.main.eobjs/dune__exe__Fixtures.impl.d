test/fixtures.ml: Alcotest Fmt Format List Vnl_core Vnl_query Vnl_relation
