test/test_recovery.ml: Alcotest Fixtures List Printf QCheck QCheck_alcotest Vnl_core Vnl_query Vnl_relation Vnl_storage Vnl_util
