test/test_relation.ml: Alcotest Bytes List Printf QCheck QCheck_alcotest String Vnl_relation
