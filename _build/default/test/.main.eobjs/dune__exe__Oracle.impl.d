test/oracle.ml: Hashtbl List Vnl_relation
