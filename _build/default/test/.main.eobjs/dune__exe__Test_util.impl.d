test/test_util.ml: Alcotest Array Format Gen List QCheck QCheck_alcotest String Vnl_util
