test/test_txn.ml: Alcotest Hashtbl List Oracle Printf QCheck QCheck_alcotest Vnl_query Vnl_relation Vnl_storage Vnl_txn Vnl_util
