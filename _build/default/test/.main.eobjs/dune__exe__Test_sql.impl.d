test/test_sql.ml: Alcotest List Printf QCheck QCheck_alcotest String Vnl_relation Vnl_sql
