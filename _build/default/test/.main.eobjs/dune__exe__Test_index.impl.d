test/test_index.ml: Alcotest Gen Hashtbl List QCheck QCheck_alcotest Test Vnl_index Vnl_relation
