test/test_core_props.ml: Array List Printf QCheck QCheck_alcotest Vnl_core Vnl_relation Vnl_util
