test/test_workload.ml: Alcotest List Printf String Vnl_relation Vnl_util Vnl_warehouse Vnl_workload
