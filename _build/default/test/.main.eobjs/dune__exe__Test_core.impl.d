test/test_core.ml: Alcotest Fixtures List Option Vnl_core Vnl_query Vnl_relation Vnl_storage
