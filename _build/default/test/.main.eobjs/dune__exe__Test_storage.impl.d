test/test_storage.ml: Alcotest Bytes Gen List QCheck QCheck_alcotest Test Vnl_relation Vnl_storage
