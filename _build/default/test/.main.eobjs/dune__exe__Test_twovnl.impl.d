test/test_twovnl.ml: Alcotest Fixtures List Printf Vnl_core Vnl_query Vnl_relation
