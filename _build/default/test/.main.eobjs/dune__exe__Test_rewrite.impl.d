test/test_rewrite.ml: Alcotest Fixtures List Printf String Vnl_core Vnl_query Vnl_relation Vnl_sql
