test/test_indexing.ml: Alcotest Array Fixtures List QCheck QCheck_alcotest Vnl_core Vnl_query Vnl_relation Vnl_sql Vnl_storage Vnl_util
