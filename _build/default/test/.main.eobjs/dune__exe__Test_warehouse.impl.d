test/test_warehouse.ml: Alcotest List QCheck QCheck_alcotest Vnl_core Vnl_relation Vnl_util Vnl_warehouse Vnl_workload
