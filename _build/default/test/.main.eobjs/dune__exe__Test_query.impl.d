test/test_query.ml: Alcotest Gen List QCheck QCheck_alcotest Test Vnl_query Vnl_relation Vnl_sql
