test/main.mli:
