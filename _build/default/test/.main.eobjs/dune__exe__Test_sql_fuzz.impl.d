test/test_sql_fuzz.ml: List Option Printexc Printf QCheck QCheck_alcotest Vnl_relation Vnl_sql
