(* Tests for the §4 query-rewrite layer: Example 4.1's reader rewrite,
   Examples 4.2-4.4's maintenance rewrites, and rewrite/engine equivalence. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Schema_ext = Vnl_core.Schema_ext
module Reader = Vnl_core.Reader
module Rewrite = Vnl_core.Rewrite
module Maintenance = Vnl_core.Maintenance
module Twovnl = Vnl_core.Twovnl

let check = Alcotest.check

let lookup_for ext name = if name = "DailySales" then Some ext else None

(* Example 4.1: the analyst query and its rewritten form. *)
let test_example_4_1_shape () =
  let ext = Schema_ext.extend Fixtures.daily_sales in
  let sql =
    Rewrite.reader_sql ~lookup:(lookup_for ext)
      "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state"
  in
  let has needle =
    let n = String.length needle and m = String.length sql in
    let rec go i = i + n <= m && (String.sub sql i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "CASE on sessionVN/tupleVN" true
    (has "CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE pre_total_sales END");
  Alcotest.(check bool) "visibility: not deleted for current" true
    (has ":sessionVN >= tupleVN AND operation <> 'd'");
  Alcotest.(check bool) "visibility: not inserted for pre" true
    (has ":sessionVN < tupleVN AND operation <> 'i'");
  Alcotest.(check bool) "group by intact" true (has "GROUP BY city, state")

let test_rewrite_is_parseable () =
  let ext = Schema_ext.extend Fixtures.daily_sales in
  let sql =
    Rewrite.reader_sql ~lookup:(lookup_for ext)
      "SELECT product_line, SUM(total_sales) FROM DailySales \
       WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line"
  in
  ignore (Vnl_sql.Parser.parse sql)

let test_rewrite_untouched_table_passthrough () =
  let sql = Rewrite.reader_sql ~lookup:(fun _ -> None) "SELECT a FROM t WHERE a > 1" in
  check Alcotest.string "unchanged" "SELECT a FROM t WHERE a > 1" sql

(* The nVNL generalization: the SQL rewrite over an n=4 table must agree
   with engine-level Table-1/§5 extraction at every in-window session. *)
let test_rewrite_nvnl_equivalence () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  let handle = Twovnl.register_table wh ~n:4 ~name:"DailySales" Fixtures.daily_sales in
  Twovnl.load_initial wh "DailySales"
    [ Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
      Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000 ];
  (* Three maintenance transactions so all slots get used. *)
  List.iter
    (fun (stmt : string) ->
      let m = Twovnl.Txn.begin_ wh in
      ignore (Twovnl.Txn.sql m stmt);
      Twovnl.Txn.commit m)
    [
      "UPDATE DailySales SET total_sales = total_sales + 100 WHERE city = 'San Jose'";
      "DELETE FROM DailySales WHERE city = 'Berkeley'";
      "UPDATE DailySales SET total_sales = total_sales + 11 WHERE city = 'San Jose'";
    ];
  List.iter
    (fun session_vn ->
      let via_sql =
        Executor.query db
          ~params:[ ("sessionVN", Value.Int session_vn) ]
          (Rewrite.reader_select ~lookup:(Twovnl.lookup wh)
             (Vnl_sql.Parser.parse_select "SELECT * FROM DailySales"))
      in
      let via_engine =
        List.map Tuple.values
          (Vnl_core.Reader.visible_relation (Twovnl.ext handle) ~session_vn
             (Twovnl.table handle))
      in
      let norm rows = List.sort compare (List.map (List.map Value.to_string) rows) in
      check
        (Alcotest.list (Alcotest.list Alcotest.string))
        (Printf.sprintf "4VNL session %d" session_vn)
        (norm via_engine)
        (norm via_sql.Executor.rows))
    [ 1; 2; 3; 4 ]

let test_rewrite_n2_form_is_papers () =
  (* The general construction must degenerate to Example 4.1's exact shape
     for n = 2. *)
  let ext = Schema_ext.extend Fixtures.daily_sales in
  let case = Rewrite.case_for_attribute ~qualifier:None ext "total_sales" in
  check Alcotest.string "case form"
    "CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE pre_total_sales END"
    (Vnl_sql.Pp.expr_to_string case);
  let vis = Rewrite.visibility_predicate ~qualifier:None ext in
  check Alcotest.string "visibility form"
    ":sessionVN >= tupleVN AND operation <> 'd' OR :sessionVN < tupleVN AND operation <> 'i'"
    (Vnl_sql.Pp.expr_to_string vis)

(* Equivalence: executing the rewritten SQL over the extended relation must
   give exactly what engine-level Table-1 extraction gives. *)
let rewritten_query db ext session_vn sql =
  Executor.query db
    ~params:[ ("sessionVN", Value.Int session_vn) ]
    (Rewrite.reader_select ~lookup:(lookup_for ext) (Vnl_sql.Parser.parse_select sql))

let test_rewrite_equals_engine_extraction () =
  let db, ext, table = Fixtures.figure4_table () in
  List.iter
    (fun session_vn ->
      let via_sql = rewritten_query db ext session_vn "SELECT * FROM DailySales" in
      let via_engine =
        List.map Tuple.values (Reader.visible_relation ext ~session_vn table)
      in
      let norm rows = List.sort compare (List.map (List.map Value.to_string) rows) in
      check
        (Alcotest.list (Alcotest.list Alcotest.string))
        (Printf.sprintf "session %d" session_vn)
        (norm via_engine)
        (norm via_sql.Executor.rows))
    [ 3; 4; 5 ]

let test_rewrite_aggregate_consistency () =
  (* The drill-down consistency property of Example 2.1, via rewrite. *)
  let db, ext, _table = Fixtures.figure4_table () in
  let total s =
    match
      (rewritten_query db ext s
         "SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose' AND state = 'CA'")
        .Executor.rows
    with
    | [ [ Value.Int n ] ] -> n
    | [ [ Value.Null ] ] -> 0
    | _ -> Alcotest.fail "shape"
  in
  let drill s =
    match
      (rewritten_query db ext s
         "SELECT SUM(total_sales) FROM DailySales \
          WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line")
        .Executor.rows
    with
    | rows ->
      List.fold_left
        (fun acc row -> match row with [ Value.Int n ] -> acc + n | _ -> acc)
        0 rows
  in
  check Alcotest.int "session 3 consistent" (total 3) (drill 3);
  check Alcotest.int "session 4 consistent" (total 4) (drill 4)

(* Maintenance statement rewrite: Examples 4.2-4.4 through SQL. *)
let maintenance_db () =
  let db, ext, table = Fixtures.figure4_table () in
  (db, ext, table)

let test_maintenance_update_sql () =
  (* Example 4.3: add 1,000 to San Jose's 10/13 sales — no matching live
     tuple in Figure 4 (the 10/14 tuple exists), so use 10/14. *)
  let db, ext, table = maintenance_db () in
  let n =
    Rewrite.maintenance_sql db ~lookup:(lookup_for ext) ~vn:5
      "UPDATE DailySales SET total_sales = total_sales + 1000 \
       WHERE city = 'San Jose' AND date = DATE '10/14/96'"
  in
  check Alcotest.int "one logical update" 1 n;
  let got = List.map (fun (_, t) -> Fixtures.summarize_ext ext t) (Table.to_list table) in
  Alcotest.(check bool) "pre preserved and current bumped" true
    (List.exists
       (fun (vn, op, city, _, day, sales, pre) ->
         vn = 5 && op = "update" && city = "San Jose" && day = 14
         && Value.equal sales (Value.Int 11000)
         && Value.equal pre (Value.Int 10000))
       got)

let test_maintenance_delete_sql_skips_deleted () =
  (* Example 4.4 shape; the Novato tuple is already logically deleted, so
     the cursor must not see it. *)
  let db, ext, _table = maintenance_db () in
  let n =
    Rewrite.maintenance_sql db ~lookup:(lookup_for ext) ~vn:5
      "DELETE FROM DailySales WHERE city = 'Novato'"
  in
  check Alcotest.int "no live match" 0 n

let test_maintenance_insert_sql_conflict () =
  (* Example 4.2: INSERT with key conflict on a logically deleted tuple. *)
  let db, ext, table = maintenance_db () in
  let n =
    Rewrite.maintenance_sql db ~lookup:(lookup_for ext) ~vn:5
      "INSERT INTO DailySales VALUES \
       ('Novato', 'CA', 'rollerblades', DATE '10/13/96', 6000)"
  in
  check Alcotest.int "one logical insert" 1 n;
  check Alcotest.int "no new physical tuple" 4 (Table.tuple_count table);
  let got = List.map (fun (_, t) -> Fixtures.summarize_ext ext t) (Table.to_list table) in
  Alcotest.(check bool) "became op=insert vn=5" true
    (List.exists
       (fun (vn, op, city, _, _, sales, _) ->
         vn = 5 && op = "insert" && city = "Novato" && Value.equal sales (Value.Int 6000))
       got)

let test_maintenance_where_sees_current_values () =
  let db, ext, _table = maintenance_db () in
  (* Berkeley current value is 12,000 (session-4 state); predicate on the
     current version must match it even though pre is 10,000. *)
  let n =
    Rewrite.maintenance_sql db ~lookup:(lookup_for ext) ~vn:5
      "UPDATE DailySales SET total_sales = 0 WHERE total_sales = 12000"
  in
  check Alcotest.int "matched current value" 1 n

let test_rewrite_all_aggregates () =
  (* MIN/MAX/AVG/COUNT over the rewritten CASE expression must track the
     session's version. *)
  let db, ext, _table = Fixtures.figure4_table () in
  let agg s fn =
    match
      (rewritten_query db ext s
         (Printf.sprintf "SELECT %s(total_sales) FROM DailySales" fn))
        .Executor.rows
    with
    | [ [ v ] ] -> Value.to_string v
    | _ -> Alcotest.fail "shape"
  in
  (* Session 3 sees 10,000 / 10,000 / 8,000 (Example 3.2). *)
  check Alcotest.string "min@3" "8,000" (agg 3 "MIN");
  check Alcotest.string "max@3" "10,000" (agg 3 "MAX");
  check Alcotest.string "count@3" "3" (agg 3 "COUNT");
  (* Session 4 sees 10,000 / 1,500 / 12,000. *)
  check Alcotest.string "min@4" "1,500" (agg 4 "MIN");
  check Alcotest.string "max@4" "12,000" (agg 4 "MAX");
  check Alcotest.string "count@4" "3" (agg 4 "COUNT")

let test_rewrite_preserves_limit () =
  let db, ext, _ = Fixtures.figure4_table () in
  let r =
    rewritten_query db ext 4
      "SELECT total_sales FROM DailySales ORDER BY total_sales DESC LIMIT 1"
  in
  match r.Executor.rows with
  | [ [ Value.Int 12000 ] ] -> ()
  | _ -> Alcotest.fail "limit through rewrite"

let test_maintenance_rejects_select () =
  let db, ext, _ = maintenance_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rewrite.maintenance_sql db ~lookup:(lookup_for ext) ~vn:5 "SELECT * FROM DailySales");
       false
     with Rewrite.Unsupported _ -> true)

let test_maintenance_unregistered_table () =
  let db, _, _ = maintenance_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rewrite.maintenance_sql db ~lookup:(fun _ -> None) ~vn:5 "DELETE FROM DailySales");
       false
     with Rewrite.Unsupported _ -> true)

let suite =
  [
    Alcotest.test_case "Example 4.1 rewrite shape" `Quick test_example_4_1_shape;
    Alcotest.test_case "rewritten SQL parses" `Quick test_rewrite_is_parseable;
    Alcotest.test_case "unregistered tables untouched" `Quick
      test_rewrite_untouched_table_passthrough;
    Alcotest.test_case "nVNL SQL rewrite = engine (n=4)" `Quick test_rewrite_nvnl_equivalence;
    Alcotest.test_case "n=2 rewrite is the paper's exact form" `Quick
      test_rewrite_n2_form_is_papers;
    Alcotest.test_case "rewrite = engine extraction" `Quick test_rewrite_equals_engine_extraction;
    Alcotest.test_case "drill-down consistency via rewrite" `Quick
      test_rewrite_aggregate_consistency;
    Alcotest.test_case "maintenance UPDATE via SQL (Ex 4.3)" `Quick test_maintenance_update_sql;
    Alcotest.test_case "maintenance DELETE skips deleted (Ex 4.4)" `Quick
      test_maintenance_delete_sql_skips_deleted;
    Alcotest.test_case "maintenance INSERT key conflict (Ex 4.2)" `Quick
      test_maintenance_insert_sql_conflict;
    Alcotest.test_case "maintenance WHERE sees current version" `Quick
      test_maintenance_where_sees_current_values;
    Alcotest.test_case "aggregates through rewrite" `Quick test_rewrite_all_aggregates;
    Alcotest.test_case "LIMIT through rewrite" `Quick test_rewrite_preserves_limit;
    Alcotest.test_case "maintenance rejects SELECT" `Quick test_maintenance_rejects_select;
    Alcotest.test_case "maintenance unregistered table" `Quick test_maintenance_unregistered_table;
  ]
