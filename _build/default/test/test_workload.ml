(* Tests for the workload layer: simulator, generators, concurrency
   comparison, and the Figure 1/2 scenarios. *)

module Simulator = Vnl_workload.Simulator
module Sales_gen = Vnl_workload.Sales_gen
module Cc_sim = Vnl_workload.Cc_sim
module Scenario = Vnl_workload.Scenario
module Xorshift = Vnl_util.Xorshift
module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Source = Vnl_warehouse.Source

let check = Alcotest.check

let test_sim_delay_ordering () =
  let sim = Simulator.create () in
  let log = ref [] in
  Simulator.spawn sim ~name:"a" (fun () ->
      Simulator.delay 10;
      log := ("a", Simulator.now sim) :: !log);
  Simulator.spawn sim ~name:"b" (fun () ->
      Simulator.delay 5;
      log := ("b", Simulator.now sim) :: !log);
  Simulator.run sim;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "b fires first"
    [ ("b", 5); ("a", 10) ]
    (List.rev !log)

let test_sim_await () =
  let sim = Simulator.create () in
  let flag = ref false in
  let woke_at = ref (-1) in
  Simulator.spawn sim ~name:"waiter" (fun () ->
      Simulator.await (fun () -> !flag);
      woke_at := Simulator.now sim);
  Simulator.spawn sim ~name:"setter" (fun () ->
      Simulator.delay 42;
      flag := true);
  Simulator.run sim;
  check Alcotest.int "woke when flag set" 42 !woke_at

let test_sim_stuck_detection () =
  let sim = Simulator.create () in
  Simulator.spawn sim ~name:"forever" (fun () -> Simulator.await (fun () -> false));
  Alcotest.(check bool) "raises Stuck" true
    (try Simulator.run sim; false with Simulator.Stuck [ "forever" ] -> true)

let test_sim_until_bound () =
  let sim = Simulator.create () in
  let count = ref 0 in
  Simulator.spawn sim ~name:"ticker" (fun () ->
      let rec loop () =
        incr count;
        Simulator.delay 10;
        loop ()
      in
      loop ());
  Simulator.run ~until:55 sim;
  check Alcotest.int "six ticks in 55" 6 !count

let test_sim_interleaving_deterministic () =
  let run_once () =
    let sim = Simulator.create () in
    let log = ref [] in
    for i = 0 to 4 do
      Simulator.spawn sim ~at:(i mod 2) ~name:(string_of_int i) (fun () ->
          Simulator.delay i;
          log := i :: !log)
    done;
    Simulator.run sim;
    List.rev !log
  in
  check (Alcotest.list Alcotest.int) "deterministic" (run_once ()) (run_once ())

let test_gen_sale_shape () =
  let rng = Xorshift.create 1 in
  let t = Sales_gen.gen_sale rng ~day:0 in
  check Alcotest.int "arity" 5 (Tuple.arity t);
  match Tuple.get t 4 with
  | Value.Int a -> Alcotest.(check bool) "positive amount" true (a > 0)
  | _ -> Alcotest.fail "amount type"

let test_date_of_day_rollover () =
  (* Day 0 is 10/14/96; day 17 is 10/31; day 18 is 11/01. *)
  Alcotest.(check bool) "day 0" true (Value.equal (Sales_gen.date_of_day 0) (Value.date_of_mdy 10 14 96));
  Alcotest.(check bool) "day 17" true
    (Value.equal (Sales_gen.date_of_day 17) (Value.date_of_mdy 10 31 96));
  Alcotest.(check bool) "day 18" true
    (Value.equal (Sales_gen.date_of_day 18) (Value.date_of_mdy 11 1 96))

let test_gen_batch_composition () =
  let rng = Xorshift.create 2 in
  let src = Source.create Sales_gen.sales_schema in
  Source.apply src
    (List.init 30 (fun _ -> Vnl_warehouse.Delta.Insert (Sales_gen.gen_sale rng ~day:0)));
  let batch = Sales_gen.gen_batch rng src ~day:1 ~inserts:10 ~updates:5 ~deletes:3 in
  let i, d, u = Vnl_warehouse.Delta.change_count batch in
  check Alcotest.int "inserts exact" 10 i;
  Alcotest.(check bool) "updates bounded" true (u <= 5);
  Alcotest.(check bool) "deletes bounded" true (d <= 3);
  (* The batch must be applicable to the source (victims exist, no double
     touch). *)
  Source.apply src batch

let test_cc_sim_vnl_beats_s2pl () =
  let cfg = { Cc_sim.default_config with readers = 12; seed = 5 } in
  let s2pl = Cc_sim.run cfg Cc_sim.S2pl in
  let vnl = Cc_sim.run cfg Cc_sim.Vnl2 in
  Alcotest.(check bool) "2VNL readers never blocked" true
    (vnl.Cc_sim.reader_blocked.Vnl_util.Stats.max = 0.0);
  Alcotest.(check bool) "2VNL zero locks" true (vnl.Cc_sim.lock_acquisitions = 0);
  Alcotest.(check bool) "S2PL blocks readers" true
    (s2pl.Cc_sim.reader_blocked.Vnl_util.Stats.mean > 0.0);
  Alcotest.(check bool) "2VNL latency <= S2PL latency" true
    (vnl.Cc_sim.reader_latency.Vnl_util.Stats.mean
    <= s2pl.Cc_sim.reader_latency.Vnl_util.Stats.mean)

let test_cc_sim_2v2pl_delays_writer () =
  let cfg = Cc_sim.default_config in
  let v2 = Cc_sim.run cfg Cc_sim.V2pl2 in
  let vnl = Cc_sim.run cfg Cc_sim.Vnl2 in
  Alcotest.(check bool) "2V2PL readers unblocked" true
    (v2.Cc_sim.reader_blocked.Vnl_util.Stats.max = 0.0);
  Alcotest.(check bool) "2V2PL writer commit delayed" true (v2.Cc_sim.writer_commit_wait > 0);
  Alcotest.(check bool) "2VNL writer not delayed" true (vnl.Cc_sim.writer_commit_wait = 0)

let test_cc_sim_same_workload_all_schemes () =
  (* All schemes complete all readers. *)
  List.iter
    (fun r ->
      check Alcotest.int
        (Printf.sprintf "%s readers" (Cc_sim.scheme_name r.Cc_sim.scheme))
        Cc_sim.default_config.Cc_sim.readers r.Cc_sim.reader_latency.Vnl_util.Stats.n)
    (Cc_sim.run_all Cc_sim.default_config)

let quick_scenario = { Scenario.default_config with Scenario.days = 2; batch_per_day = 120 }

let test_scenario_offline_availability () =
  let r = Scenario.run quick_scenario Scenario.Offline in
  Alcotest.(check bool) "availability well below 1" true (Scenario.availability r < 0.5);
  Alcotest.(check bool) "sessions rejected" true (r.Scenario.sessions_rejected > 0);
  Alcotest.(check bool) "no inconsistencies" true (r.Scenario.inconsistent_pairs = 0);
  Alcotest.(check bool) "view correct at end" true r.Scenario.view_matches_source

let test_scenario_online_full_availability () =
  let r = Scenario.run quick_scenario (Scenario.Online 2) in
  Alcotest.(check bool) "fully available" true (Scenario.availability r = 1.0);
  check Alcotest.int "nothing rejected" 0 r.Scenario.sessions_rejected;
  check Alcotest.int "serializable: no inconsistent pairs" 0 r.Scenario.inconsistent_pairs;
  Alcotest.(check bool) "view correct at end" true r.Scenario.view_matches_source

let test_scenario_online_3vnl_no_expiry () =
  let r2 = Scenario.run quick_scenario (Scenario.Online 2) in
  let r3 = Scenario.run quick_scenario (Scenario.Online 3) in
  Alcotest.(check bool) "2VNL has expirations under this pattern" true
    (r2.Scenario.sessions_expired > 0);
  check Alcotest.int "3VNL eliminates them" 0 r3.Scenario.sessions_expired

let test_scenario_dirty_reads_inconsistent () =
  let r = Scenario.run quick_scenario Scenario.Dirty in
  Alcotest.(check bool) "read-uncommitted breaks drill-downs" true
    (r.Scenario.inconsistent_pairs > 0)

let test_scenario_quiescent_policy () =
  let cfg =
    { quick_scenario with Scenario.commit_policy = Scenario.When_quiescent; session_len = 100 }
  in
  let r = Scenario.run cfg (Scenario.Online 2) in
  check Alcotest.int "no expirations under quiescent commit" 0 r.Scenario.sessions_expired;
  Alcotest.(check bool) "commits waited for readers" true (r.Scenario.commit_wait_minutes > 0);
  Alcotest.(check bool) "view still correct" true r.Scenario.view_matches_source

let test_scenario_frequency_freshness () =
  let run runs_per_day =
    let cfg =
      {
        quick_scenario with
        Scenario.runs_per_day;
        maintenance_len = 12 * 60 / runs_per_day;
        batch_per_day = 120;
      }
    in
    Scenario.run cfg (Scenario.Online 3)
  in
  let daily = run 1 and hourly3 = run 8 in
  Alcotest.(check bool) "more runs happen" true
    (hourly3.Scenario.maintenance_runs > daily.Scenario.maintenance_runs);
  Alcotest.(check bool) "fresher data" true
    (hourly3.Scenario.avg_staleness_minutes < daily.Scenario.avg_staleness_minutes);
  Alcotest.(check bool) "still correct" true hourly3.Scenario.view_matches_source;
  Alcotest.(check bool) "still consistent" true (hourly3.Scenario.inconsistent_pairs = 0)

let test_scenario_timeline_renders () =
  let r = Scenario.run quick_scenario (Scenario.Online 2) in
  let text = Scenario.render_timeline r in
  Alcotest.(check bool) "mentions both rows" true
    (String.length text > 0
    && String.contains text '#'
    && String.contains text 'M')

let suite =
  [
    Alcotest.test_case "simulator delay ordering" `Quick test_sim_delay_ordering;
    Alcotest.test_case "simulator await" `Quick test_sim_await;
    Alcotest.test_case "simulator stuck detection" `Quick test_sim_stuck_detection;
    Alcotest.test_case "simulator until bound" `Quick test_sim_until_bound;
    Alcotest.test_case "simulator deterministic" `Quick test_sim_interleaving_deterministic;
    Alcotest.test_case "sale generator shape" `Quick test_gen_sale_shape;
    Alcotest.test_case "date rollover" `Quick test_date_of_day_rollover;
    Alcotest.test_case "batch composition" `Quick test_gen_batch_composition;
    Alcotest.test_case "2VNL beats S2PL for readers" `Quick test_cc_sim_vnl_beats_s2pl;
    Alcotest.test_case "2V2PL delays the writer" `Quick test_cc_sim_2v2pl_delays_writer;
    Alcotest.test_case "all schemes complete" `Quick test_cc_sim_same_workload_all_schemes;
    Alcotest.test_case "offline scenario (Fig 1)" `Quick test_scenario_offline_availability;
    Alcotest.test_case "online scenario (Fig 2)" `Quick test_scenario_online_full_availability;
    Alcotest.test_case "3VNL removes expirations" `Quick test_scenario_online_3vnl_no_expiry;
    Alcotest.test_case "dirty reads are inconsistent" `Quick test_scenario_dirty_reads_inconsistent;
    Alcotest.test_case "quiescent commit policy" `Quick test_scenario_quiescent_policy;
    Alcotest.test_case "frequency improves freshness" `Quick test_scenario_frequency_freshness;
    Alcotest.test_case "timeline renders" `Quick test_scenario_timeline_renders;
  ]
