(* Unit and property tests for Vnl_relation: values, schemas, tuples. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple

let check = Alcotest.check

(* The paper's DailySales relation (Example 2.1 / Figure 3). *)
let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let sample_tuple =
  Tuple.make daily_sales
    [
      Value.Str "San Jose";
      Value.Str "CA";
      Value.Str "golf equip";
      Value.date_of_mdy 10 14 96;
      Value.Int 10000;
    ]

let test_dtype_widths () =
  check Alcotest.int "int" 4 (Dtype.width Dtype.Int);
  check Alcotest.int "float" 8 (Dtype.width Dtype.Float);
  check Alcotest.int "str" 20 (Dtype.width (Dtype.Str 20));
  check Alcotest.int "date" 4 (Dtype.width Dtype.Date);
  check Alcotest.int "bool" 1 (Dtype.width Dtype.Bool)

let test_schema_width_matches_paper () =
  (* Figure 3: the unextended DailySales relation is 42 bytes per tuple. *)
  check Alcotest.int "42 bytes" 42 (Schema.width daily_sales)

let test_schema_flags () =
  check (Alcotest.list Alcotest.int) "key indices" [ 0; 1; 2; 3 ] (Schema.key_indices daily_sales);
  check (Alcotest.list Alcotest.int) "updatable" [ 4 ] (Schema.updatable_indices daily_sales);
  Alcotest.(check bool) "has key" true (Schema.has_unique_key daily_sales)

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate name" (Invalid_argument "Schema.make: duplicate attribute \"a\"")
    (fun () -> ignore (Schema.make [ Schema.attr "a" Dtype.Int; Schema.attr "a" Dtype.Int ]))

let test_schema_key_updatable_rejected () =
  Alcotest.check_raises "key+updatable"
    (Invalid_argument "Schema.make: key attribute \"k\" cannot be updatable") (fun () ->
      ignore (Schema.make [ Schema.attr ~key:true ~updatable:true "k" Dtype.Int ]))

let test_value_compare_null_lowest () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (Value.Int 0) < 0);
  Alcotest.(check bool) "null = null" true (Value.compare Value.Null Value.Null = 0)

let test_value_arith () =
  check Alcotest.int "int add"
    (match Value.add (Value.Int 2) (Value.Int 3) with Value.Int n -> n | _ -> -1)
    5;
  Alcotest.(check bool) "null propagates" true
    (Value.is_null (Value.add (Value.Int 2) Value.Null))

let test_value_mul_div_neg () =
  Alcotest.(check bool) "int mul" true (Value.equal (Value.mul (Value.Int 6) (Value.Int 7)) (Value.Int 42));
  Alcotest.(check bool) "int div truncates" true
    (Value.equal (Value.div (Value.Int 7) (Value.Int 2)) (Value.Int 3));
  Alcotest.(check bool) "mixed promotes" true
    (Value.equal (Value.mul (Value.Int 2) (Value.Float 1.5)) (Value.Float 3.0));
  Alcotest.(check bool) "neg" true (Value.equal (Value.neg (Value.Int 5)) (Value.Int (-5)));
  Alcotest.(check bool) "neg null" true (Value.is_null (Value.neg Value.Null));
  Alcotest.(check bool) "div by zero raises" true
    (try ignore (Value.div (Value.Int 1) (Value.Int 0)); false with Division_by_zero -> true);
  Alcotest.(check bool) "non-numeric raises" true
    (try ignore (Value.add (Value.Str "a") (Value.Int 1)); false with Invalid_argument _ -> true)

let test_value_to_float () =
  Alcotest.(check (float 1e-9)) "int" 3.0 (Value.to_float (Value.Int 3));
  Alcotest.(check (float 1e-9)) "null is zero" 0.0 (Value.to_float Value.Null);
  Alcotest.(check bool) "string raises" true
    (try ignore (Value.to_float (Value.Str "x")); false with Invalid_argument _ -> true)

let test_value_date_pp () =
  check Alcotest.string "paper format" "10/14/96" (Value.to_string (Value.date_of_mdy 10 14 96))

let test_value_int_pp_thousands () =
  check Alcotest.string "grouped" "10,000" (Value.to_string (Value.Int 10000));
  check Alcotest.string "small" "150" (Value.to_string (Value.Int 150));
  check Alcotest.string "negative" "-1,234,567" (Value.to_string (Value.Int (-1234567)))

let test_value_encode_roundtrip () =
  let cases =
    [
      (Dtype.Int, Value.Int 12345);
      (Dtype.Int, Value.Int (-7));
      (Dtype.Int, Value.Null);
      (Dtype.Float, Value.Float 3.25);
      (Dtype.Float, Value.Null);
      (Dtype.Str 10, Value.Str "hello");
      (Dtype.Str 10, Value.Str "");
      (Dtype.Str 10, Value.Null);
      (Dtype.Date, Value.date_of_mdy 1 1 2000);
      (Dtype.Date, Value.Null);
      (Dtype.Bool, Value.Bool true);
      (Dtype.Bool, Value.Bool false);
      (Dtype.Bool, Value.Null);
    ]
  in
  List.iter
    (fun (dt, v) ->
      let buf = Value.encode dt v in
      check Alcotest.int "width" (Dtype.width dt) (Bytes.length buf);
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Value.to_string v))
        true
        (Value.equal v (Value.decode dt buf 0)))
    cases

let test_value_encode_type_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Value.encode Dtype.Int (Value.Str "x"));
       false
     with Invalid_argument _ -> true)

let test_tuple_make_and_get () =
  check Alcotest.string "city" "San Jose"
    (Value.to_string (Tuple.get_by_name daily_sales sample_tuple "city"));
  check Alcotest.int "arity" 5 (Tuple.arity sample_tuple)

let test_tuple_arity_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tuple.make daily_sales [ Value.Int 1 ]);
       false
     with Invalid_argument _ -> true)

let test_tuple_type_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Tuple.make daily_sales
            [ Value.Int 1; Value.Str "CA"; Value.Str "x"; Value.date_of_mdy 1 1 99; Value.Int 0 ]);
       false
     with Invalid_argument _ -> true)

let test_tuple_set () =
  let t = Tuple.set sample_tuple 4 (Value.Int 42) in
  check Alcotest.string "updated" "42" (Value.to_string (Tuple.get t 4));
  check Alcotest.string "original untouched" "10,000" (Value.to_string (Tuple.get sample_tuple 4))

let test_tuple_key_of () =
  let key = Tuple.key_of daily_sales sample_tuple in
  check Alcotest.int "key arity" 4 (List.length key);
  check Alcotest.string "first" "San Jose" (Value.to_string (List.hd key))

let test_tuple_encode_roundtrip () =
  let buf = Tuple.encode daily_sales sample_tuple in
  check Alcotest.int "width" 42 (Bytes.length buf);
  Alcotest.(check bool) "roundtrip" true
    (Tuple.equal sample_tuple (Tuple.decode daily_sales buf))

let test_tuple_encode_roundtrip_with_nulls () =
  let t =
    Tuple.make daily_sales
      [ Value.Str "X"; Value.Str "YZ"; Value.Str "w"; Value.Null; Value.Null ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Tuple.equal t (Tuple.decode daily_sales (Tuple.encode daily_sales t)))

(* Property: random tuples round-trip through physical encoding. *)
let gen_value_for dt =
  let open QCheck.Gen in
  match dt with
  | Dtype.Int -> map (fun n -> Value.Int n) (int_range (-1000000) 1000000)
  | Dtype.Float -> map (fun f -> Value.Float f) (float_range (-1e6) 1e6)
  | Dtype.Str n ->
    map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 n))
  | Dtype.Date ->
    map2 (fun m d -> Value.date_of_mdy m d 96) (int_range 1 12) (int_range 1 28)
  | Dtype.Bool -> map (fun b -> Value.Bool b) bool

let gen_tuple =
  let open QCheck.Gen in
  let attrs = Schema.attributes daily_sales in
  let rec values = function
    | [] -> return []
    | a :: rest ->
      let* v =
        frequency [ (9, gen_value_for a.Schema.dtype); (1, return Value.Null) ]
      in
      let* vs = values rest in
      return (v :: vs)
  in
  map (fun vs -> Tuple.make daily_sales vs) (values attrs)

let qcheck_tuple_roundtrip =
  QCheck.Test.make ~name:"tuple encode/decode roundtrip" ~count:500
    (QCheck.make gen_tuple ~print:(fun t -> String.concat "," (Tuple.to_strings t)))
    (fun t -> Tuple.equal t (Tuple.decode daily_sales (Tuple.encode daily_sales t)))

let qcheck_value_compare_total_order =
  let gen =
    QCheck.Gen.oneof
      [
        gen_value_for Dtype.Int;
        gen_value_for (Dtype.Str 8);
        gen_value_for Dtype.Date;
        QCheck.Gen.return Value.Null;
      ]
  in
  QCheck.Test.make ~name:"value compare antisymmetric and transitive-ish" ~count:500
    (QCheck.make (QCheck.Gen.triple gen gen gen) ~print:(fun (a, b, c) ->
         Printf.sprintf "%s %s %s" (Value.to_string a) (Value.to_string b) (Value.to_string c)))
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0) || Value.compare a c <= 0))

let suite =
  [
    Alcotest.test_case "dtype widths" `Quick test_dtype_widths;
    Alcotest.test_case "DailySales is 42 bytes (Fig 3)" `Quick test_schema_width_matches_paper;
    Alcotest.test_case "schema flags" `Quick test_schema_flags;
    Alcotest.test_case "schema duplicate rejected" `Quick test_schema_duplicate_rejected;
    Alcotest.test_case "schema key+updatable rejected" `Quick test_schema_key_updatable_rejected;
    Alcotest.test_case "null sorts lowest" `Quick test_value_compare_null_lowest;
    Alcotest.test_case "value arithmetic" `Quick test_value_arith;
    Alcotest.test_case "value mul/div/neg" `Quick test_value_mul_div_neg;
    Alcotest.test_case "value to_float" `Quick test_value_to_float;
    Alcotest.test_case "date pp mm/dd/yy" `Quick test_value_date_pp;
    Alcotest.test_case "int pp thousands" `Quick test_value_int_pp_thousands;
    Alcotest.test_case "value encode roundtrip" `Quick test_value_encode_roundtrip;
    Alcotest.test_case "value encode type mismatch" `Quick test_value_encode_type_mismatch;
    Alcotest.test_case "tuple make/get" `Quick test_tuple_make_and_get;
    Alcotest.test_case "tuple arity mismatch" `Quick test_tuple_arity_mismatch;
    Alcotest.test_case "tuple type mismatch" `Quick test_tuple_type_mismatch;
    Alcotest.test_case "tuple functional set" `Quick test_tuple_set;
    Alcotest.test_case "tuple key_of" `Quick test_tuple_key_of;
    Alcotest.test_case "tuple encode roundtrip" `Quick test_tuple_encode_roundtrip;
    Alcotest.test_case "tuple roundtrip with nulls" `Quick test_tuple_encode_roundtrip_with_nulls;
    QCheck_alcotest.to_alcotest qcheck_tuple_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_value_compare_total_order;
  ]
