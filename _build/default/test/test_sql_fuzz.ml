(* Property: randomly *generated* ASTs survive pretty-print -> parse
   round-trips structurally.  This covers the grammar corners hand-written
   sources miss: nesting, precedence edges, CASE in odd positions, NULLs,
   qualified names, multi-row inserts. *)

module Value = Vnl_relation.Value
module Ast = Vnl_sql.Ast
module Pp = Vnl_sql.Pp
module Parser = Vnl_sql.Parser

open QCheck.Gen

let ident =
  let first = char_range 'a' 'z' in
  let rest = string_size ~gen:(char_range 'a' 'z') (int_range 0 5) in
  map2 (fun c s -> Printf.sprintf "%c%s" c s) first rest

(* Identifiers must avoid SQL keywords; prefix keeps them safe. *)
let column = map (fun s -> "c_" ^ s) ident

let table_name = map (fun s -> "t_" ^ s) ident

let literal =
  oneof
    [
      map (fun n -> Ast.Lit (Value.Int n)) (int_range 0 100000);
      map (fun s -> Ast.Lit (Value.Str s)) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
      map (fun s -> Ast.Lit (Value.Str (s ^ "'" ^ s))) (string_size ~gen:(char_range 'a' 'z') (int_range 0 3));
      return (Ast.Lit Value.Null);
      map2 (fun m d -> Ast.Lit (Value.date_of_mdy m d 96)) (int_range 1 12) (int_range 1 28);
      map (fun p -> Ast.Param ("p_" ^ p)) ident;
    ]

let arith_op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ]

let cmp_op = oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

(* Numeric-ish expression of bounded depth. *)
let rec expr_gen depth =
  if depth = 0 then oneof [ literal; map (fun c -> Ast.Col (None, c)) column ]
  else
    frequency
      [
        (3, oneof [ literal; map (fun c -> Ast.Col (None, c)) column ]);
        (2, map3 (fun op a b -> Ast.Binop (op, a, b)) arith_op (expr_gen (depth - 1)) (expr_gen (depth - 1)));
        (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (expr_gen (depth - 1)));
        ( 1,
          let* arms =
            list_size (int_range 1 2)
              (pair (pred_gen (depth - 1)) (expr_gen (depth - 1)))
          in
          let* d = opt (expr_gen (depth - 1)) in
          return (Ast.Case (arms, d)) );
      ]

and pred_gen depth =
  if depth = 0 then
    map3 (fun op a b -> Ast.Binop (op, a, b)) cmp_op (expr_gen 0) (expr_gen 0)
  else
    frequency
      [
        (3, map3 (fun op a b -> Ast.Binop (op, a, b)) cmp_op (expr_gen (depth - 1)) (expr_gen (depth - 1)));
        (1, map2 (fun a b -> Ast.Binop (Ast.And, a, b)) (pred_gen (depth - 1)) (pred_gen (depth - 1)));
        (1, map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) (pred_gen (depth - 1)) (pred_gen (depth - 1)));
        (1, map (fun e -> Ast.Unop (Ast.Not, e)) (pred_gen (depth - 1)));
        (1, map (fun e -> Ast.Is_null e) (expr_gen (depth - 1)));
        (1, map (fun e -> Ast.Is_not_null e) (expr_gen (depth - 1)));
        ( 1,
          let* e = expr_gen (depth - 1) in
          let* cands = list_size (int_range 1 3) (expr_gen (depth - 1)) in
          return (Ast.In (e, cands)) );
        ( 1,
          let* e = expr_gen (depth - 1) in
          let* lo = expr_gen (depth - 1) in
          let* hi = expr_gen (depth - 1) in
          return (Ast.Between (e, lo, hi)) );
        ( 1,
          let* e = expr_gen (depth - 1) in
          let* pat = string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_range 0 5) in
          return (Ast.Like (e, pat)) );
      ]

let select_gen =
  let* nitems = int_range 1 3 in
  let* items =
    list_repeat nitems
      (oneof
         [
           map (fun e -> Ast.Item (e, None)) (expr_gen 2);
           map2 (fun e a -> Ast.Item (e, Some ("a_" ^ a))) (expr_gen 2) ident;
         ])
  in
  let* from = list_size (int_range 1 2) (pair table_name (opt (map (fun a -> "q_" ^ a) ident))) in
  let* where = opt (pred_gen 2) in
  let* group_by = list_size (int_range 0 2) (map (fun c -> Ast.Col (None, c)) column) in
  let* order_by =
    list_size (int_range 0 2) (pair (expr_gen 1) (oneofl [ Ast.Asc; Ast.Desc ]))
  in
  let* distinct = bool in
  let* limit =
    opt (pair (int_range 0 20) (int_range 0 10))
  in
  return
    (Ast.Select
       { Ast.distinct; items; from; where; group_by; having = None; order_by; limit })

let statement_gen =
  frequency
    [
      (4, select_gen);
      ( 2,
        let* table = table_name in
        let* ncols = int_range 1 3 in
        let* cols = list_repeat ncols column in
        let* rows = list_size (int_range 1 3) (list_repeat ncols (expr_gen 1)) in
        let* named = bool in
        return (Ast.Insert { table; columns = (if named then Some cols else None); rows }) );
      ( 2,
        let* table = table_name in
        let* sets = list_size (int_range 1 3) (pair column (expr_gen 2)) in
        let* where = opt (pred_gen 2) in
        return (Ast.Update { table; sets; where }) );
      ( 1,
        let* table = table_name in
        let* where = opt (pred_gen 2) in
        return (Ast.Delete { table; where }) );
    ]

(* Structural equality modulo nothing: the printer must emit text that
   parses back to the same tree.  (Columns named like keywords, operator
   precedence, quoting, CASE nesting are all exercised.) *)
let rec equal_stmt (a : Ast.statement) (b : Ast.statement) =
  match (a, b) with
  | Ast.Select x, Ast.Select y ->
    x.Ast.distinct = y.Ast.distinct
    && List.equal equal_item x.Ast.items y.Ast.items
    && x.Ast.from = y.Ast.from
    && Option.equal Ast.equal_expr x.Ast.where y.Ast.where
    && List.equal Ast.equal_expr x.Ast.group_by y.Ast.group_by
    && List.equal
         (fun (e1, d1) (e2, d2) -> Ast.equal_expr e1 e2 && d1 = d2)
         x.Ast.order_by y.Ast.order_by
    && x.Ast.limit = y.Ast.limit
  | Ast.Insert x, Ast.Insert y ->
    x.table = y.table && x.columns = y.columns
    && List.equal (List.equal Ast.equal_expr) x.rows y.rows
  | Ast.Update x, Ast.Update y ->
    x.table = y.table
    && List.equal (fun (c1, e1) (c2, e2) -> c1 = c2 && Ast.equal_expr e1 e2) x.sets y.sets
    && Option.equal Ast.equal_expr x.where y.where
  | Ast.Delete x, Ast.Delete y ->
    x.table = y.table && Option.equal Ast.equal_expr x.where y.where
  | (Ast.Select _ | Ast.Insert _ | Ast.Update _ | Ast.Delete _), _ -> false

and equal_item a b =
  match (a, b) with
  | Ast.Star, Ast.Star -> true
  | Ast.Item (e1, a1), Ast.Item (e2, a2) -> Ast.equal_expr e1 e2 && a1 = a2
  | (Ast.Star | Ast.Item _), _ -> false

let qcheck_print_parse_roundtrip =
  QCheck.Test.make ~name:"generated AST survives print/parse" ~count:400
    (QCheck.make statement_gen ~print:Pp.statement_to_string)
    (fun stmt ->
      let printed = Pp.statement_to_string stmt in
      match Parser.parse printed with
      | reparsed -> equal_stmt stmt reparsed
      | exception e ->
        QCheck.Test.fail_reportf "did not re-parse: %s\n%s" (Printexc.to_string e) printed)

let qcheck_expr_roundtrip =
  QCheck.Test.make ~name:"generated expression survives print/parse" ~count:600
    (QCheck.make (pred_gen 3) ~print:Pp.expr_to_string)
    (fun e ->
      let printed = Pp.expr_to_string e in
      match Parser.parse_expr printed with
      | reparsed -> Ast.equal_expr e reparsed
      | exception ex ->
        QCheck.Test.fail_reportf "did not re-parse: %s\n%s" (Printexc.to_string ex) printed)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_print_parse_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
  ]
