(* Tests for the concurrency-control baselines of §6: the strict-2PL lock
   manager, 2V2PL commit gating, and the MV2PL version pool. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Lock_manager = Vnl_txn.Lock_manager
module Two_v2pl = Vnl_txn.Two_v2pl
module Version_pool = Vnl_txn.Version_pool
module Mv2pl = Vnl_txn.Mv2pl

let check = Alcotest.check

(* ---------- Lock manager ---------- *)

let test_lock_s_s_compatible () =
  let lm = Lock_manager.create () in
  Alcotest.(check bool) "t1 S" true (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.S = `Granted);
  Alcotest.(check bool) "t2 S" true (Lock_manager.acquire lm ~txn:2 ~item:10 Lock_manager.S = `Granted)

let test_lock_x_conflicts () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.X);
  Alcotest.(check bool) "reader blocks on writer" true
    (Lock_manager.acquire lm ~txn:2 ~item:10 Lock_manager.S = `Blocked);
  Alcotest.(check bool) "t2 waiting" true (Lock_manager.is_waiting lm ~txn:2);
  check (Alcotest.option Alcotest.int) "blocked on item" (Some 10)
    (Lock_manager.blocked_on lm ~txn:2)

let test_lock_release_grants_fifo () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:2 ~item:10 Lock_manager.S);
  ignore (Lock_manager.acquire lm ~txn:3 ~item:10 Lock_manager.S);
  let granted = Lock_manager.release_all lm ~txn:1 in
  check (Alcotest.list Alcotest.int) "both readers granted" [ 2; 3 ] (List.sort compare granted);
  Alcotest.(check bool) "t2 holds S" true
    (Lock_manager.holds lm ~txn:2 ~item:10 = Some Lock_manager.S)

let test_lock_fifo_fairness () =
  (* A queued X blocks later S requests even while S holders are active
     (no reader starvation of the writer). *)
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.S);
  Alcotest.(check bool) "writer queues" true
    (Lock_manager.acquire lm ~txn:2 ~item:10 Lock_manager.X = `Blocked);
  Alcotest.(check bool) "later reader queues behind writer" true
    (Lock_manager.acquire lm ~txn:3 ~item:10 Lock_manager.S = `Blocked);
  let granted = Lock_manager.release_all lm ~txn:1 in
  check (Alcotest.list Alcotest.int) "writer first" [ 2 ] granted;
  let granted2 = Lock_manager.release_all lm ~txn:2 in
  check (Alcotest.list Alcotest.int) "then reader" [ 3 ] granted2

let test_lock_reentrant () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.X);
  Alcotest.(check bool) "re-acquire held" true
    (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.X = `Granted);
  Alcotest.(check bool) "weaker mode free" true
    (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.S = `Granted)

let test_lock_upgrade () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.S);
  Alcotest.(check bool) "sole-holder upgrade" true
    (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.X = `Granted);
  Alcotest.(check bool) "now exclusive" true
    (Lock_manager.acquire lm ~txn:2 ~item:10 Lock_manager.S = `Blocked)

let test_lock_deadlock_detection () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~item:10 Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:2 ~item:20 Lock_manager.X);
  ignore (Lock_manager.acquire lm ~txn:1 ~item:20 Lock_manager.X);
  Alcotest.(check bool) "no cycle yet" true (Lock_manager.find_deadlock lm = None);
  ignore (Lock_manager.acquire lm ~txn:2 ~item:10 Lock_manager.X);
  (match Lock_manager.find_deadlock lm with
  | Some cycle ->
    Alcotest.(check bool) "cycle has both" true
      (List.mem 1 cycle && List.mem 2 cycle)
  | None -> Alcotest.fail "deadlock not detected");
  (* Victim abort resolves it. *)
  let granted = Lock_manager.release_all lm ~txn:2 in
  Alcotest.(check bool) "t1 granted after abort" true (List.mem 1 granted);
  Alcotest.(check bool) "cycle gone" true (Lock_manager.find_deadlock lm = None)

let test_lock_counts () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:1 ~item:1 Lock_manager.S);
  ignore (Lock_manager.acquire lm ~txn:1 ~item:2 Lock_manager.S);
  check Alcotest.int "two locks" 2 (Lock_manager.lock_count lm);
  check Alcotest.int "two acquisitions" 2 (Lock_manager.acquisitions lm);
  ignore (Lock_manager.release_all lm ~txn:1);
  check Alcotest.int "zero after release" 0 (Lock_manager.lock_count lm)

(* ---------- 2V2PL ---------- *)

let test_2v2pl_reader_never_blocks () =
  let cc = Two_v2pl.create () in
  Two_v2pl.begin_writer cc ~writer:100;
  Two_v2pl.write cc ~writer:100 ~item:1;
  Two_v2pl.begin_reader cc ~reader:1;
  (* Reading a written item is allowed (previous version). *)
  Two_v2pl.read cc ~reader:1 ~item:1;
  check (Alcotest.list Alcotest.int) "reader active" [ 1 ] (Two_v2pl.active_readers cc)

let test_2v2pl_commit_gated_by_readers () =
  let cc = Two_v2pl.create () in
  Two_v2pl.begin_reader cc ~reader:1;
  Two_v2pl.begin_reader cc ~reader:2;
  Two_v2pl.begin_writer cc ~writer:100;
  Two_v2pl.write cc ~writer:100 ~item:1;
  Two_v2pl.read cc ~reader:1 ~item:1;
  Two_v2pl.read cc ~reader:2 ~item:2;
  check (Alcotest.list Alcotest.int) "only overlapping reader gates" [ 1 ]
    (Two_v2pl.blocking_readers cc ~writer:100);
  Alcotest.(check bool) "commit rejected while gated" true
    (try Two_v2pl.commit_writer cc ~writer:100; false with Invalid_argument _ -> true);
  Two_v2pl.end_reader cc ~reader:1;
  check (Alcotest.list Alcotest.int) "gate cleared" [] (Two_v2pl.blocking_readers cc ~writer:100);
  Two_v2pl.commit_writer cc ~writer:100;
  Alcotest.(check bool) "writer done" true (Two_v2pl.writer_active cc = None)

let test_2v2pl_read_after_write_gates () =
  (* Order does not matter: a read after the write also gates commit. *)
  let cc = Two_v2pl.create () in
  Two_v2pl.begin_writer cc ~writer:100;
  Two_v2pl.write cc ~writer:100 ~item:5;
  Two_v2pl.begin_reader cc ~reader:9;
  Two_v2pl.read cc ~reader:9 ~item:5;
  check (Alcotest.list Alcotest.int) "gated" [ 9 ] (Two_v2pl.blocking_readers cc ~writer:100)

let test_2v2pl_single_writer () =
  let cc = Two_v2pl.create () in
  Two_v2pl.begin_writer cc ~writer:1;
  Alcotest.(check bool) "second writer rejected" true
    (try Two_v2pl.begin_writer cc ~writer:2; false with Invalid_argument _ -> true)

(* ---------- Version pool ---------- *)

let kv_schema =
  Schema.make [ Schema.attr ~key:true "id" Dtype.Int; Schema.attr ~updatable:true "v" Dtype.Int ]

let kv id v = Tuple.make kv_schema [ Value.Int id; Value.Int v ]

let fresh_pool () =
  let disk = Vnl_storage.Disk.create () in
  let bp = Vnl_storage.Buffer_pool.create disk in
  Version_pool.create bp kv_schema

let key0 = { Version_pool.page = 0; slot = 0 }

let test_pool_stash_fetch () =
  let pool = fresh_pool () in
  Version_pool.stash pool ~key:key0 ~vn:1 (kv 7 100);
  Version_pool.stash pool ~key:key0 ~vn:3 (kv 7 300);
  check Alcotest.int "chain length" 2 (Version_pool.chain_length pool ~key:key0);
  (match Version_pool.fetch pool ~key:key0 ~max_vn:3 with
  | Some (3, t) -> Alcotest.(check bool) "newest" true (Tuple.equal t (kv 7 300))
  | _ -> Alcotest.fail "fetch vn 3");
  (match Version_pool.fetch pool ~key:key0 ~max_vn:2 with
  | Some (1, t) -> Alcotest.(check bool) "older" true (Tuple.equal t (kv 7 100))
  | _ -> Alcotest.fail "fetch vn 2");
  Alcotest.(check bool) "too old" true (Version_pool.fetch pool ~key:key0 ~max_vn:0 = None)

let test_pool_gc () =
  let pool = fresh_pool () in
  List.iter (fun vn -> Version_pool.stash pool ~key:key0 ~vn (kv 7 (vn * 10))) [ 1; 2; 3; 4 ];
  let removed = Version_pool.gc pool ~keep_from:3 in
  (* Keep vn 4, 3 and the newest below 3 (vn 2); drop vn 1. *)
  check Alcotest.int "removed" 1 removed;
  check Alcotest.int "remaining" 3 (Version_pool.chain_length pool ~key:key0);
  (match Version_pool.fetch pool ~key:key0 ~max_vn:3 with
  | Some (3, _) -> ()
  | _ -> Alcotest.fail "vn 3 must survive")

(* ---------- 2V2PL data layer ---------- *)

module Tv_table = Vnl_txn.Two_v2pl_table

let fresh_2v () =
  let db = Database.create () in
  let table = Database.create_table db "T" kv_schema in
  let rid = Table.insert table (kv 1 100) in
  (table, Tv_table.create table, rid)

let test_2v_table_reader_sees_committed () =
  let _table, tv, rid = fresh_2v () in
  Tv_table.begin_writer tv;
  Tv_table.writer_update tv rid (kv 1 999);
  (match Tv_table.read tv rid with
  | Some t -> Alcotest.(check bool) "committed version" true (Tuple.equal t (kv 1 100))
  | None -> Alcotest.fail "visible");
  (match Tv_table.writer_read tv rid with
  | Some t -> Alcotest.(check bool) "writer sees own version" true (Tuple.equal t (kv 1 999))
  | None -> Alcotest.fail "writer view");
  check Alcotest.int "one pending version" 1 (Tv_table.pending_versions tv)

let test_2v_table_commit_installs () =
  let _table, tv, rid = fresh_2v () in
  Tv_table.begin_writer tv;
  Tv_table.writer_update tv rid (kv 1 999);
  Tv_table.writer_insert tv (kv 2 200);
  Tv_table.commit tv;
  (match Tv_table.read tv rid with
  | Some t -> Alcotest.(check bool) "installed" true (Tuple.equal t (kv 1 999))
  | None -> Alcotest.fail "visible");
  let n = ref 0 in
  Tv_table.scan_committed tv (fun _ -> incr n);
  check Alcotest.int "insert installed" 2 !n;
  check Alcotest.int "no pending" 0 (Tv_table.pending_versions tv)

let test_2v_table_abort_drops () =
  let _table, tv, rid = fresh_2v () in
  Tv_table.begin_writer tv;
  Tv_table.writer_delete tv rid;
  Tv_table.abort tv;
  Alcotest.(check bool) "still committed" true (Tv_table.read tv rid <> None)

let test_2v_table_delete_at_commit () =
  let _table, tv, rid = fresh_2v () in
  Tv_table.begin_writer tv;
  Tv_table.writer_delete tv rid;
  Alcotest.(check bool) "reader still sees it" true (Tv_table.read tv rid <> None);
  Tv_table.commit tv;
  Alcotest.(check bool) "gone after commit" true (Tv_table.read tv rid = None)

let test_2v_table_double_delete_rejected () =
  let _table, tv, rid = fresh_2v () in
  Tv_table.begin_writer tv;
  Tv_table.writer_delete tv rid;
  Alcotest.(check bool) "raises" true
    (try Tv_table.writer_delete tv rid; false with Invalid_argument _ -> true)

(* ---------- MV2PL ---------- *)

let fresh_mv () =
  let db = Database.create () in
  let table = Database.create_table db "T" kv_schema in
  let mv = Mv2pl.create table in
  (db, table, mv)

let test_mv2pl_snapshot_isolation () =
  let _db, table, mv = fresh_mv () in
  let rid = Table.insert table (kv 1 100) in
  let snap = Mv2pl.begin_snapshot mv in
  let w = Mv2pl.begin_writer mv in
  check Alcotest.int "writer vn" 2 w;
  Mv2pl.writer_update mv rid (kv 1 200);
  (* The old snapshot still reads 100 via the pool. *)
  (match Mv2pl.read mv ~snapshot:snap rid with
  | Some t -> Alcotest.(check bool) "old version" true (Tuple.equal t (kv 1 100))
  | None -> Alcotest.fail "visible");
  Mv2pl.commit_writer mv;
  (match Mv2pl.read mv ~snapshot:snap rid with
  | Some t -> Alcotest.(check bool) "still old after commit" true (Tuple.equal t (kv 1 100))
  | None -> Alcotest.fail "visible");
  let snap2 = Mv2pl.begin_snapshot mv in
  match Mv2pl.read mv ~snapshot:snap2 rid with
  | Some t -> Alcotest.(check bool) "new snapshot sees new" true (Tuple.equal t (kv 1 200))
  | None -> Alcotest.fail "visible"

let test_mv2pl_insert_delete_visibility () =
  let _db, _table, mv = fresh_mv () in
  let snap1 = Mv2pl.begin_snapshot mv in
  let _w = Mv2pl.begin_writer mv in
  let rid = Mv2pl.writer_insert mv (kv 5 500) in
  Alcotest.(check bool) "insert invisible to old snapshot" true
    (Mv2pl.read mv ~snapshot:snap1 rid = None);
  Mv2pl.commit_writer mv;
  let snap2 = Mv2pl.begin_snapshot mv in
  Alcotest.(check bool) "visible to new snapshot" true (Mv2pl.read mv ~snapshot:snap2 rid <> None);
  let _w2 = Mv2pl.begin_writer mv in
  Mv2pl.writer_delete mv rid;
  Mv2pl.commit_writer mv;
  Alcotest.(check bool) "old snapshot still sees it" true
    (Mv2pl.read mv ~snapshot:snap2 rid <> None);
  let snap3 = Mv2pl.begin_snapshot mv in
  Alcotest.(check bool) "new snapshot does not" true (Mv2pl.read mv ~snapshot:snap3 rid = None)

let test_mv2pl_many_versions () =
  (* Unlike 2VNL, MV2PL supports arbitrarily many versions. *)
  let _db, table, mv = fresh_mv () in
  let rid = Table.insert table (kv 1 0) in
  let snaps = ref [] in
  for i = 1 to 5 do
    snaps := (Mv2pl.begin_snapshot mv, (i - 1) * 10) :: !snaps;
    let _w = Mv2pl.begin_writer mv in
    Mv2pl.writer_update mv rid (kv 1 (i * 10));
    Mv2pl.commit_writer mv
  done;
  List.iter
    (fun (snap, expected) ->
      match Mv2pl.read mv ~snapshot:snap rid with
      | Some t -> Alcotest.(check bool) (Printf.sprintf "snap %d" snap) true
          (Tuple.equal t (kv 1 expected))
      | None -> Alcotest.fail "visible")
    !snaps

let test_mv2pl_abort_restores () =
  let _db, table, mv = fresh_mv () in
  let rid = Table.insert table (kv 1 100) in
  let _w = Mv2pl.begin_writer mv in
  Mv2pl.writer_update mv rid (kv 1 999);
  let rid2 = Mv2pl.writer_insert mv (kv 2 200) in
  Mv2pl.abort_writer mv;
  (match Table.get table rid with
  | Some t -> Alcotest.(check bool) "restored" true (Tuple.equal t (kv 1 100))
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "inserted tuple removed" true (Table.get table rid2 = None);
  check Alcotest.int "vn unchanged" 1 (Mv2pl.current_vn mv)

let test_mv2pl_gc () =
  let _db, table, mv = fresh_mv () in
  let rid = Table.insert table (kv 1 0) in
  for i = 1 to 4 do
    let _w = Mv2pl.begin_writer mv in
    Mv2pl.writer_update mv rid (kv 1 i);
    Mv2pl.commit_writer mv
  done;
  Alcotest.(check bool) "pool populated" true (Mv2pl.pool_entries mv > 0);
  let removed = Mv2pl.gc mv in
  Alcotest.(check bool) "gc reclaims" true (removed > 0);
  (* Current state unharmed. *)
  let snap = Mv2pl.begin_snapshot mv in
  match Mv2pl.read mv ~snapshot:snap rid with
  | Some t -> Alcotest.(check bool) "current intact" true (Tuple.equal t (kv 1 4))
  | None -> Alcotest.fail "visible"

let test_mv2pl_scan_snapshot () =
  let _db, table, mv = fresh_mv () in
  let _r1 = Table.insert table (kv 1 10) in
  let _r2 = Table.insert table (kv 2 20) in
  let snap = Mv2pl.begin_snapshot mv in
  let _w = Mv2pl.begin_writer mv in
  ignore (Mv2pl.writer_insert mv (kv 3 30));
  Mv2pl.commit_writer mv;
  let count = ref 0 in
  Mv2pl.scan mv ~snapshot:snap (fun _ -> incr count);
  check Alcotest.int "old snapshot scans 2" 2 !count;
  let snap2 = Mv2pl.begin_snapshot mv in
  let count2 = ref 0 in
  Mv2pl.scan mv ~snapshot:snap2 (fun _ -> incr count2);
  check Alcotest.int "new snapshot scans 3" 3 !count2

(* Property: MV2PL against the oracle. *)
let qcheck_mv2pl_oracle =
  QCheck.Test.make ~name:"MV2PL snapshots = oracle" ~count:50
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000) ~print:string_of_int)
    (fun seed ->
      let rng = Vnl_util.Xorshift.create seed in
      let _db, _table, mv = fresh_mv () in
      let oracle = Oracle.create kv_schema in
      let rids = Hashtbl.create 16 in
      let next = ref 0 in
      let ok = ref true in
      for _txn = 1 to 6 do
        let w = Mv2pl.begin_writer mv in
        let live = Oracle.live_keys oracle ~vn:(w - 1) in
        let ops = ref [] in
        for _i = 0 to Vnl_util.Xorshift.int rng 5 do
          if live = [] || Vnl_util.Xorshift.bool rng then begin
            incr next;
            let v = Vnl_util.Xorshift.int rng 100 in
            let rid = Mv2pl.writer_insert mv (kv !next v) in
            Hashtbl.replace rids !next rid;
            ops := Oracle.Ins (kv !next v) :: !ops
          end
          else begin
            let key = Vnl_util.Xorshift.pick_list rng live in
            let k = match key with [ Value.Int k ] -> k | _ -> assert false in
            (* Only touch keys not already touched this txn, to keep the
               generator simple. *)
            let touched =
              List.exists
                (function
                  | Oracle.Upd (key', _) | Oracle.Del key' -> key' = key
                  | Oracle.Ins t -> Tuple.key_of kv_schema t = key)
                !ops
            in
            if not touched then begin
              let rid = Hashtbl.find rids k in
              if Vnl_util.Xorshift.bool rng then begin
                let v = Vnl_util.Xorshift.int rng 100 in
                Mv2pl.writer_update mv rid (kv k v);
                ops := Oracle.Upd (key, [ (1, Value.Int v) ]) :: !ops
              end
              else begin
                Mv2pl.writer_delete mv rid;
                ops := Oracle.Del key :: !ops
              end
            end
          end
        done;
        Mv2pl.commit_writer mv;
        Oracle.apply_txn oracle ~vn:w (List.rev !ops);
        (* Every snapshot from 1 to current must match the oracle. *)
        for s = 1 to Mv2pl.current_vn mv do
          let view = ref [] in
          Mv2pl.scan mv ~snapshot:s (fun t -> view := t :: !view);
          if not (Oracle.equal_views !view (Oracle.visible oracle ~vn:s)) then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "S/S compatible" `Quick test_lock_s_s_compatible;
    Alcotest.test_case "X conflicts" `Quick test_lock_x_conflicts;
    Alcotest.test_case "release grants FIFO" `Quick test_lock_release_grants_fifo;
    Alcotest.test_case "FIFO fairness" `Quick test_lock_fifo_fairness;
    Alcotest.test_case "re-entrant acquire" `Quick test_lock_reentrant;
    Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
    Alcotest.test_case "deadlock detection" `Quick test_lock_deadlock_detection;
    Alcotest.test_case "lock counts" `Quick test_lock_counts;
    Alcotest.test_case "2V2PL reader never blocks" `Quick test_2v2pl_reader_never_blocks;
    Alcotest.test_case "2V2PL commit gated by readers" `Quick test_2v2pl_commit_gated_by_readers;
    Alcotest.test_case "2V2PL read-after-write gates" `Quick test_2v2pl_read_after_write_gates;
    Alcotest.test_case "2V2PL single writer" `Quick test_2v2pl_single_writer;
    Alcotest.test_case "version pool stash/fetch" `Quick test_pool_stash_fetch;
    Alcotest.test_case "version pool gc" `Quick test_pool_gc;
    Alcotest.test_case "2V2PL table: reader sees committed" `Quick
      test_2v_table_reader_sees_committed;
    Alcotest.test_case "2V2PL table: commit installs" `Quick test_2v_table_commit_installs;
    Alcotest.test_case "2V2PL table: abort drops" `Quick test_2v_table_abort_drops;
    Alcotest.test_case "2V2PL table: delete at commit" `Quick test_2v_table_delete_at_commit;
    Alcotest.test_case "2V2PL table: double delete rejected" `Quick
      test_2v_table_double_delete_rejected;
    Alcotest.test_case "MV2PL snapshot isolation" `Quick test_mv2pl_snapshot_isolation;
    Alcotest.test_case "MV2PL insert/delete visibility" `Quick
      test_mv2pl_insert_delete_visibility;
    Alcotest.test_case "MV2PL many versions" `Quick test_mv2pl_many_versions;
    Alcotest.test_case "MV2PL abort restores" `Quick test_mv2pl_abort_restores;
    Alcotest.test_case "MV2PL gc" `Quick test_mv2pl_gc;
    Alcotest.test_case "MV2PL snapshot scan" `Quick test_mv2pl_scan_snapshot;
    QCheck_alcotest.to_alcotest qcheck_mv2pl_oracle;
  ]
