(* Tests for the query engine: tables, evaluation, SELECT execution, DML. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Dml = Vnl_query.Dml
module Eval = Vnl_query.Eval
module Parser = Vnl_sql.Parser

let check = Alcotest.check

let daily_sales_schema =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let fresh_db () =
  let db = Database.create () in
  let t = Database.create_table db "DailySales" daily_sales_schema in
  let row city state pl m d y sales =
    Tuple.make daily_sales_schema
      [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy m d y; Value.Int sales ]
  in
  List.iter
    (fun r -> ignore (Table.insert t r))
    [
      row "San Jose" "CA" "golf equip" 10 14 96 10000;
      row "San Jose" "CA" "golf equip" 10 15 96 1500;
      row "Berkeley" "CA" "racquetball" 10 14 96 12000;
      row "Novato" "CA" "rollerblades" 10 13 96 8000;
    ];
  db

let int_rows result =
  List.map
    (fun row -> List.map (fun v -> match v with Value.Int n -> n | _ -> min_int) row)
    result.Executor.rows

let test_table_unique_violation () =
  let db = fresh_db () in
  let t = Database.table_exn db "DailySales" in
  let dup =
    Tuple.make daily_sales_schema
      [
        Value.Str "San Jose"; Value.Str "CA"; Value.Str "golf equip";
        Value.date_of_mdy 10 14 96; Value.Int 1;
      ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Table.insert t dup);
       false
     with Table.Unique_violation _ -> true)

let test_table_find_by_key () =
  let db = fresh_db () in
  let t = Database.table_exn db "DailySales" in
  let key =
    [ Value.Str "Berkeley"; Value.Str "CA"; Value.Str "racquetball"; Value.date_of_mdy 10 14 96 ]
  in
  match Table.find_by_key t key with
  | Some (_, tuple) ->
    check Alcotest.string "sales" "12,000"
      (Value.to_string (Tuple.get_by_name daily_sales_schema tuple "total_sales"))
  | None -> Alcotest.fail "key probe failed"

let test_table_update_in_place_reindexes () =
  let db = fresh_db () in
  let t = Database.table_exn db "DailySales" in
  let key =
    [ Value.Str "Novato"; Value.Str "CA"; Value.Str "rollerblades"; Value.date_of_mdy 10 13 96 ]
  in
  match Table.find_by_key t key with
  | None -> Alcotest.fail "probe"
  | Some (rid, tuple) ->
    Table.update_in_place t rid (Tuple.set tuple 4 (Value.Int 9999));
    (match Table.find_by_key t key with
    | Some (_, updated) ->
      check Alcotest.string "updated" "9,999" (Value.to_string (Tuple.get updated 4))
    | None -> Alcotest.fail "lost after update")

let test_table_delete_removes_from_index () =
  let db = fresh_db () in
  let t = Database.table_exn db "DailySales" in
  let key =
    [ Value.Str "Novato"; Value.Str "CA"; Value.Str "rollerblades"; Value.date_of_mdy 10 13 96 ]
  in
  (match Table.find_by_key t key with
  | Some (rid, _) -> Table.delete t rid
  | None -> Alcotest.fail "probe");
  Alcotest.(check bool) "gone" true (Table.find_by_key t key = None);
  check Alcotest.int "count" 3 (Table.tuple_count t)

let test_db_duplicate_table () =
  let db = fresh_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Database.create_table db "DailySales" daily_sales_schema);
       false
     with Invalid_argument _ -> true)

let test_select_star () =
  let db = fresh_db () in
  let r = Executor.query_string db "SELECT * FROM DailySales" in
  check Alcotest.int "rows" 4 (List.length r.Executor.rows);
  check Alcotest.int "columns" 5 (List.length r.Executor.columns)

let test_select_where () =
  let db = fresh_db () in
  let r =
    Executor.query_string db "SELECT total_sales FROM DailySales WHERE city = 'San Jose'"
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "values" [ [ 10000 ]; [ 1500 ] ] (int_rows r)

(* Example 2.1's first analyst query. *)
let test_select_group_by_paper () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state \
       ORDER BY city"
  in
  let rendered =
    List.map (fun row -> List.map Value.to_string row) r.Executor.rows
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "totals"
    [
      [ "Berkeley"; "CA"; "12,000" ];
      [ "Novato"; "CA"; "8,000" ];
      [ "San Jose"; "CA"; "11,500" ];
    ]
    rendered

(* Example 2.1's drill-down query. *)
let test_select_drill_down_paper () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT product_line, SUM(total_sales) FROM DailySales \
       WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line"
  in
  (match r.Executor.rows with
  | [ [ Value.Str "golf equip"; Value.Int 11500 ] ] -> ()
  | _ -> Alcotest.fail "drill-down mismatch");
  (* Consistency: drill-down must add up to the city total. *)
  let total =
    Executor.query_string db
      "SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose' AND state = 'CA'"
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "sum matches" [ [ 11500 ] ] (int_rows total)

let test_select_aggregates () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT COUNT(*), MIN(total_sales), MAX(total_sales), AVG(total_sales) FROM DailySales"
  in
  match r.Executor.rows with
  | [ [ Value.Int 4; Value.Int 1500; Value.Int 12000; Value.Float avg ] ] ->
    check (Alcotest.float 1e-9) "avg" 7875.0 avg
  | _ -> Alcotest.fail "aggregate row shape"

let test_select_count_empty () =
  let db = fresh_db () in
  let r = Executor.query_string db "SELECT COUNT(*) FROM DailySales WHERE city = 'Nowhere'" in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "zero" [ [ 0 ] ] (int_rows r)

let test_select_sum_empty_is_null () =
  let db = fresh_db () in
  let r =
    Executor.query_string db "SELECT SUM(total_sales) FROM DailySales WHERE city = 'Nowhere'"
  in
  match r.Executor.rows with
  | [ [ Value.Null ] ] -> ()
  | _ -> Alcotest.fail "SUM over empty should be NULL"

let test_select_having () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city \
       HAVING SUM(total_sales) > 10000 ORDER BY city"
  in
  let cities = List.map (fun row -> Value.to_string (List.hd row)) r.Executor.rows in
  check (Alcotest.list Alcotest.string) "cities" [ "Berkeley"; "San Jose" ] cities

let test_select_order_desc () =
  let db = fresh_db () in
  let r =
    Executor.query_string db "SELECT total_sales FROM DailySales ORDER BY total_sales DESC"
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "descending"
    [ [ 12000 ]; [ 10000 ]; [ 8000 ]; [ 1500 ] ]
    (int_rows r)

let test_order_by_aggregate () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT city FROM DailySales GROUP BY city ORDER BY SUM(total_sales) DESC"
  in
  let cities = List.map (fun row -> Value.to_string (List.hd row)) r.Executor.rows in
  check (Alcotest.list Alcotest.string) "by descending total"
    [ "Berkeley"; "San Jose"; "Novato" ] cities

let test_global_having () =
  let db = fresh_db () in
  let keeps = Executor.query_string db "SELECT SUM(total_sales) FROM DailySales HAVING COUNT(*) > 2" in
  check Alcotest.int "kept" 1 (List.length keeps.Executor.rows);
  let drops =
    Executor.query_string db "SELECT SUM(total_sales) FROM DailySales HAVING COUNT(*) > 99"
  in
  check Alcotest.int "dropped" 0 (List.length drops.Executor.rows)

let test_limit_offset () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT total_sales FROM DailySales ORDER BY total_sales DESC LIMIT 2"
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "top 2" [ [ 12000 ]; [ 10000 ] ] (int_rows r);
  let r2 =
    Executor.query_string db
      "SELECT total_sales FROM DailySales ORDER BY total_sales DESC LIMIT 2 OFFSET 2"
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "next 2" [ [ 8000 ]; [ 1500 ] ] (int_rows r2);
  let r3 = Executor.query_string db "SELECT total_sales FROM DailySales LIMIT 0" in
  check Alcotest.int "limit 0" 0 (List.length r3.Executor.rows);
  let r4 =
    Executor.query_string db "SELECT total_sales FROM DailySales LIMIT 99 OFFSET 3"
  in
  check Alcotest.int "offset past end" 1 (List.length r4.Executor.rows)

let test_select_distinct () =
  let db = fresh_db () in
  let r = Executor.query_string db "SELECT DISTINCT state FROM DailySales" in
  check Alcotest.int "one state" 1 (List.length r.Executor.rows)

let test_select_params () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      ~params:[ ("min_sales", Value.Int 9000) ]
      "SELECT city FROM DailySales WHERE total_sales >= :min_sales ORDER BY city"
  in
  let cities = List.map (fun row -> Value.to_string (List.hd row)) r.Executor.rows in
  check (Alcotest.list Alcotest.string) "cities" [ "Berkeley"; "San Jose" ] cities

let test_select_unbound_param () =
  let db = fresh_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Executor.query_string db "SELECT city FROM DailySales WHERE total_sales > :x");
       false
     with Eval.Eval_error _ -> true)

let test_select_unknown_table () =
  let db = fresh_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Executor.query_string db "SELECT * FROM Nope");
       false
     with Executor.Query_error _ -> true)

let test_select_unknown_column () =
  let db = fresh_db () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Executor.query_string db "SELECT nonsense FROM DailySales");
       false
     with Eval.Eval_error _ -> true)

let test_select_cross_product_join () =
  let db = fresh_db () in
  let regions =
    Schema.make [ Schema.attr ~key:true "state" (Dtype.Str 2); Schema.attr "region" (Dtype.Str 8) ]
  in
  let t = Database.create_table db "Regions" regions in
  ignore (Table.insert t (Tuple.make regions [ Value.Str "CA"; Value.Str "west" ]));
  let r =
    Executor.query_string db
      "SELECT d.city, r.region FROM DailySales d, Regions r WHERE d.state = r.state"
  in
  check Alcotest.int "joined rows" 4 (List.length r.Executor.rows)

let test_select_ambiguous_column () =
  let db = fresh_db () in
  let regions =
    Schema.make [ Schema.attr ~key:true "state" (Dtype.Str 2); Schema.attr "region" (Dtype.Str 8) ]
  in
  let t = Database.create_table db "Regions" regions in
  ignore (Table.insert t (Tuple.make regions [ Value.Str "CA"; Value.Str "west" ]));
  Alcotest.(check bool) "raises" true
    (try
       ignore (Executor.query_string db "SELECT state FROM DailySales, Regions");
       false
     with Eval.Eval_error _ -> true)

let test_case_expression_eval () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT city, CASE WHEN total_sales >= 10000 THEN 'big' ELSE 'small' END AS size \
       FROM DailySales ORDER BY city"
  in
  let sizes = List.map (fun row -> Value.to_string (List.nth row 1)) r.Executor.rows in
  check (Alcotest.list Alcotest.string) "sizes" [ "big"; "small"; "big"; "small" ] sizes

let test_null_three_valued_logic () =
  let db = Database.create () in
  let s = Schema.make [ Schema.attr "a" Dtype.Int ] in
  let t = Database.create_table db "t" s in
  ignore (Table.insert t (Tuple.make s [ Value.Int 1 ]));
  ignore (Table.insert t (Tuple.make s [ Value.Null ]));
  (* NULL = NULL is unknown, so the row must not match. *)
  let r = Executor.query_string db "SELECT a FROM t WHERE a = a" in
  check Alcotest.int "null row filtered" 1 (List.length r.Executor.rows);
  let r2 = Executor.query_string db "SELECT a FROM t WHERE a IS NULL" in
  check Alcotest.int "is null matches" 1 (List.length r2.Executor.rows)

let test_in_between_like_eval () =
  let db = fresh_db () in
  let r =
    Executor.query_string db
      "SELECT city FROM DailySales WHERE city IN ('Berkeley', 'Novato') ORDER BY city"
  in
  check Alcotest.int "IN matches" 2 (List.length r.Executor.rows);
  let r2 =
    Executor.query_string db
      "SELECT city FROM DailySales WHERE total_sales BETWEEN 8000 AND 12000 ORDER BY city"
  in
  check Alcotest.int "BETWEEN matches" 3 (List.length r2.Executor.rows);
  let r3 = Executor.query_string db "SELECT city FROM DailySales WHERE city LIKE 'San%'" in
  check Alcotest.int "LIKE prefix" 2 (List.length r3.Executor.rows);
  let r4 = Executor.query_string db "SELECT city FROM DailySales WHERE city LIKE '%o%'" in
  check Alcotest.int "LIKE infix" 3 (List.length r4.Executor.rows);
  let r5 = Executor.query_string db "SELECT city FROM DailySales WHERE city LIKE 'N_vato'" in
  check Alcotest.int "LIKE underscore" 1 (List.length r5.Executor.rows);
  let r6 =
    Executor.query_string db "SELECT city FROM DailySales WHERE city NOT IN ('San Jose')"
  in
  check Alcotest.int "NOT IN" 2 (List.length r6.Executor.rows)

let test_in_null_semantics () =
  let db = Database.create () in
  let s = Schema.make [ Schema.attr "a" Dtype.Int ] in
  let t = Database.create_table db "t" s in
  ignore (Table.insert t (Tuple.make s [ Value.Int 1 ]));
  ignore (Table.insert t (Tuple.make s [ Value.Null ]));
  (* 1 IN (2, NULL) is unknown, not false; NULL IN (...) is unknown. *)
  let r = Executor.query_string db "SELECT a FROM t WHERE a IN (2, NULL)" in
  check Alcotest.int "unknown filters out" 0 (List.length r.Executor.rows);
  let r2 = Executor.query_string db "SELECT a FROM t WHERE NOT (a IN (2, NULL))" in
  check Alcotest.int "NOT unknown is still unknown" 0 (List.length r2.Executor.rows);
  let r3 = Executor.query_string db "SELECT a FROM t WHERE a IN (1, NULL)" in
  check Alcotest.int "match wins over null" 1 (List.length r3.Executor.rows)

let test_dml_insert () =
  let db = fresh_db () in
  let out =
    Dml.execute_string db
      "INSERT INTO DailySales VALUES ('Fresno', 'CA', 'tennis', DATE '10/14/96', 500)"
  in
  check Alcotest.int "changed" 1 out.Dml.changed;
  check Alcotest.int "count" 5 (Table.tuple_count (Database.table_exn db "DailySales"))

let test_dml_insert_named_columns_null_fill () =
  let db = Database.create () in
  let s = Schema.make [ Schema.attr "a" Dtype.Int; Schema.attr "b" Dtype.Int ] in
  ignore (Database.create_table db "t" s);
  ignore (Dml.execute_string db "INSERT INTO t (b) VALUES (7)");
  let r = Executor.query_string db "SELECT a, b FROM t" in
  match r.Executor.rows with
  | [ [ Value.Null; Value.Int 7 ] ] -> ()
  | _ -> Alcotest.fail "null fill"

(* Example 4.3's UPDATE statement shape. *)
let test_dml_update_paper () =
  let db = fresh_db () in
  let out =
    Dml.execute_string db
      "UPDATE DailySales SET total_sales = total_sales + 1000 \
       WHERE city = 'San Jose' AND date = DATE '10/14/96'"
  in
  check Alcotest.int "matched" 1 out.Dml.matched;
  let r =
    Executor.query_string db
      "SELECT total_sales FROM DailySales WHERE city = 'San Jose' AND date = DATE '10/14/96'"
  in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "updated" [ [ 11000 ] ] (int_rows r)

let test_dml_update_sees_old_values () =
  let db = Database.create () in
  let s = Schema.make [ Schema.attr "a" Dtype.Int; Schema.attr "b" Dtype.Int ] in
  let t = Database.create_table db "t" s in
  ignore (Table.insert t (Tuple.make s [ Value.Int 1; Value.Int 2 ]));
  (* Swap via simultaneous assignment: both RHS see the old tuple. *)
  ignore (Dml.execute_string db "UPDATE t SET a = b, b = a");
  let r = Executor.query_string db "SELECT a, b FROM t" in
  check (Alcotest.list (Alcotest.list Alcotest.int)) "swapped" [ [ 2; 1 ] ] (int_rows r)

let test_dml_delete () =
  let db = fresh_db () in
  let out = Dml.execute_string db "DELETE FROM DailySales WHERE state = 'CA'" in
  check Alcotest.int "deleted all" 4 out.Dml.changed;
  check Alcotest.int "empty" 0 (Table.tuple_count (Database.table_exn db "DailySales"))

let test_dml_select_rids_cursor () =
  let db = fresh_db () in
  let where = Some (Parser.parse_expr "city = 'San Jose'") in
  let rids = Dml.select_rids db ~table:"DailySales" where in
  check Alcotest.int "two matches" 2 (List.length rids)

(* Property: SUM(x) equals the fold over a full scan, for random tables. *)
let qcheck_sum_matches_scan =
  let open QCheck in
  let module Tuple = Vnl_relation.Tuple in
  let gen = Gen.(list_size (0 -- 60) (int_range 0 10000)) in
  Test.make ~name:"SUM agrees with manual fold" ~count:100 (make gen) (fun values ->
      let db = Database.create () in
      let s = Schema.make [ Schema.attr ~key:true "id" Dtype.Int; Schema.attr "v" Dtype.Int ] in
      let t = Database.create_table db "t" s in
      List.iteri
        (fun i v -> ignore (Table.insert t (Tuple.make s [ Value.Int i; Value.Int v ])))
        values;
      let r = Executor.query_string db "SELECT SUM(v) FROM t" in
      match (r.Executor.rows, values) with
      | [ [ Value.Null ] ], [] -> true
      | [ [ Value.Int total ] ], _ -> total = List.fold_left ( + ) 0 values
      | _ -> false)

let suite =
  [
    Alcotest.test_case "unique violation" `Quick test_table_unique_violation;
    Alcotest.test_case "find by key" `Quick test_table_find_by_key;
    Alcotest.test_case "update reindexes" `Quick test_table_update_in_place_reindexes;
    Alcotest.test_case "delete unindexes" `Quick test_table_delete_removes_from_index;
    Alcotest.test_case "duplicate table rejected" `Quick test_db_duplicate_table;
    Alcotest.test_case "select star" `Quick test_select_star;
    Alcotest.test_case "select where" `Quick test_select_where;
    Alcotest.test_case "paper query 1 (group by)" `Quick test_select_group_by_paper;
    Alcotest.test_case "paper query 2 (drill down)" `Quick test_select_drill_down_paper;
    Alcotest.test_case "aggregates" `Quick test_select_aggregates;
    Alcotest.test_case "count on empty" `Quick test_select_count_empty;
    Alcotest.test_case "sum on empty is null" `Quick test_select_sum_empty_is_null;
    Alcotest.test_case "having" `Quick test_select_having;
    Alcotest.test_case "order by desc" `Quick test_select_order_desc;
    Alcotest.test_case "order by aggregate" `Quick test_order_by_aggregate;
    Alcotest.test_case "global having" `Quick test_global_having;
    Alcotest.test_case "limit/offset" `Quick test_limit_offset;
    Alcotest.test_case "distinct" `Quick test_select_distinct;
    Alcotest.test_case "named parameters" `Quick test_select_params;
    Alcotest.test_case "unbound parameter" `Quick test_select_unbound_param;
    Alcotest.test_case "unknown table" `Quick test_select_unknown_table;
    Alcotest.test_case "unknown column" `Quick test_select_unknown_column;
    Alcotest.test_case "cross product join" `Quick test_select_cross_product_join;
    Alcotest.test_case "ambiguous column" `Quick test_select_ambiguous_column;
    Alcotest.test_case "case expression" `Quick test_case_expression_eval;
    Alcotest.test_case "three-valued logic" `Quick test_null_three_valued_logic;
    Alcotest.test_case "IN/BETWEEN/LIKE evaluation" `Quick test_in_between_like_eval;
    Alcotest.test_case "IN null semantics" `Quick test_in_null_semantics;
    Alcotest.test_case "dml insert" `Quick test_dml_insert;
    Alcotest.test_case "dml insert null fill" `Quick test_dml_insert_named_columns_null_fill;
    Alcotest.test_case "dml update (Example 4.3 shape)" `Quick test_dml_update_paper;
    Alcotest.test_case "dml update sees old values" `Quick test_dml_update_sees_old_values;
    Alcotest.test_case "dml delete" `Quick test_dml_delete;
    Alcotest.test_case "dml cursor rids" `Quick test_dml_select_rids_cursor;
    QCheck_alcotest.to_alcotest qcheck_sum_matches_scan;
  ]
