(* Full-history multiversion reference implementation.

   The oracle keeps every committed state of every logical tuple, keyed by
   the relation's unique key.  2VNL/nVNL reader views are checked against
   [visible] at each version: the two must agree wherever the bounded-version
   algorithm has not expired. *)

module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Value = Vnl_relation.Value

type key = Value.t list

type op =
  | Ins of Tuple.t  (** Full base tuple to insert. *)
  | Upd of key * (int * Value.t) list  (** Key plus base-position assignments. *)
  | Del of key

type t = {
  schema : Schema.t;
  history : (key, (int * Tuple.t option) list ref) Hashtbl.t;
      (** Per key: (vn, state) newest first; [None] = logically absent. *)
}

let create schema =
  if not (Schema.has_unique_key schema) then
    invalid_arg "Oracle.create: schema needs a unique key";
  { schema; history = Hashtbl.create 64 }

let key_of t tuple = Tuple.key_of t.schema tuple

(* Committed state of [key] as of version [vn]. *)
let state_at t key ~vn =
  match Hashtbl.find_opt t.history key with
  | None -> None
  | Some entries ->
    let rec newest_le = function
      | [] -> None
      | (v, state) :: rest -> if v <= vn then state else newest_le rest
    in
    newest_le !entries

let record t key ~vn state =
  let entries =
    match Hashtbl.find_opt t.history key with
    | Some e -> e
    | None ->
      let e = ref [] in
      Hashtbl.add t.history key e;
      e
  in
  (match !entries with
  | (v, _) :: rest when v = vn -> entries := (vn, state) :: rest
  | _ -> entries := (vn, state) :: !entries)

let apply_txn t ~vn ops =
  (* Ops act on the evolving in-transaction state; the committed record for
     [vn] is the net result. *)
  let working = Hashtbl.create 16 in
  let current key =
    match Hashtbl.find_opt working key with
    | Some s -> s
    | None -> state_at t key ~vn:(vn - 1)
  in
  List.iter
    (fun op ->
      match op with
      | Ins tuple ->
        let key = key_of t tuple in
        (match current key with
        | Some _ -> invalid_arg "Oracle: insert over live tuple"
        | None -> Hashtbl.replace working key (Some tuple))
      | Upd (key, assignments) -> (
        match current key with
        | None -> invalid_arg "Oracle: update of absent tuple"
        | Some tuple -> Hashtbl.replace working key (Some (Tuple.set_many tuple assignments)))
      | Del key -> (
        match current key with
        | None -> invalid_arg "Oracle: delete of absent tuple"
        | Some _ -> Hashtbl.replace working key None))
    ops;
  Hashtbl.iter (fun key state -> record t key ~vn state) working

let visible t ~vn =
  Hashtbl.fold
    (fun key _ acc ->
      match state_at t key ~vn with Some tuple -> tuple :: acc | None -> acc)
    t.history []
  |> List.sort Tuple.compare

let live_keys t ~vn =
  Hashtbl.fold
    (fun key _ acc -> match state_at t key ~vn with Some _ -> key :: acc | None -> acc)
    t.history []

let dead_keys t ~vn =
  Hashtbl.fold
    (fun key entries acc ->
      match state_at t key ~vn with
      | Some _ -> acc
      | None -> if !entries = [] then acc else key :: acc)
    t.history []

let normalize tuples = List.sort Tuple.compare tuples

let equal_views a b = List.equal Tuple.equal (normalize a) (normalize b)
