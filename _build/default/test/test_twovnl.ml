(* Tests for the Twovnl facade: sessions over live maintenance, commit,
   no-log rollback, and garbage collection. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Twovnl = Vnl_core.Twovnl
module Maintenance = Vnl_core.Maintenance

let check = Alcotest.check

let initial_rows =
  [
    Fixtures.base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
    Fixtures.base_row "San Jose" "CA" "golf equip" 10 15 96 1500;
    Fixtures.base_row "Berkeley" "CA" "racquetball" 10 14 96 12000;
    Fixtures.base_row "Novato" "CA" "rollerblades" 10 13 96 8000;
  ]

let fresh ?n () =
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ?n ~name:"DailySales" Fixtures.daily_sales);
  Twovnl.load_initial wh "DailySales" initial_rows;
  (db, wh)

let city_total wh s city =
  let r =
    Twovnl.Session.query wh s
      (Printf.sprintf
         "SELECT SUM(total_sales) FROM DailySales WHERE city = '%s'" city)
  in
  match r.Executor.rows with
  | [ [ Value.Int n ] ] -> n
  | [ [ Value.Null ] ] -> 0
  | _ -> Alcotest.fail "bad shape"

let test_session_sees_loaded_data () =
  let _db, wh = fresh () in
  let s = Twovnl.Session.begin_ wh in
  check Alcotest.int "session vn" 1 (Twovnl.Session.vn s);
  check Alcotest.int "san jose total" 11500 (city_total wh s "San Jose");
  check Alcotest.int "rows" 4 (List.length (Twovnl.Session.read_table wh s "DailySales"))

let test_reader_isolated_from_active_txn () =
  let _db, wh = fresh () in
  let s = Twovnl.Session.begin_ wh in
  let m = Twovnl.Txn.begin_ wh in
  check Alcotest.int "maintenanceVN" 2 (Twovnl.Txn.vn m);
  ignore (Twovnl.Txn.sql m "UPDATE DailySales SET total_sales = total_sales + 1000 WHERE city = 'San Jose'");
  ignore (Twovnl.Txn.sql m "DELETE FROM DailySales WHERE city = 'Berkeley'");
  Twovnl.Txn.insert m ~table:"DailySales"
    [ Value.Str "Fresno"; Value.Str "CA"; Value.Str "tennis"; Value.date_of_mdy 10 16 96;
      Value.Int 300 ];
  (* The uncommitted transaction must be invisible to the session. *)
  check Alcotest.int "unchanged during txn" 11500 (city_total wh s "San Jose");
  check Alcotest.int "berkeley still visible" 12000 (city_total wh s "Berkeley");
  check Alcotest.int "fresno not visible" 0 (city_total wh s "Fresno");
  Twovnl.Txn.commit m;
  (* Still invisible after commit: the session reads version 1. *)
  check Alcotest.int "still isolated after commit" 11500 (city_total wh s "San Jose");
  Alcotest.(check bool) "session still valid" true (Twovnl.Session.is_valid wh s);
  (* A new session sees the new version. *)
  let s2 = Twovnl.Session.begin_ wh in
  check Alcotest.int "new session vn" 2 (Twovnl.Session.vn s2);
  check Alcotest.int "new session sees update" 13500 (city_total wh s2 "San Jose");
  check Alcotest.int "berkeley deleted" 0 (city_total wh s2 "Berkeley");
  check Alcotest.int "fresno inserted" 300 (city_total wh s2 "Fresno")

let test_session_expires_when_next_txn_begins () =
  let _db, wh = fresh () in
  let s = Twovnl.Session.begin_ wh in
  let m1 = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m1 "DELETE FROM DailySales WHERE city = 'Novato'");
  Twovnl.Txn.commit m1;
  Alcotest.(check bool) "valid after one commit" true (Twovnl.Session.is_valid wh s);
  let m2 = Twovnl.Txn.begin_ wh in
  Alcotest.(check bool) "expired once next txn begins" false (Twovnl.Session.is_valid wh s);
  Alcotest.(check bool) "query raises Expired" true
    (try ignore (city_total wh s "San Jose"); false with Twovnl.Expired _ -> true);
  Twovnl.Txn.commit m2

let test_single_maintenance_txn () =
  let _db, wh = fresh () in
  let m = Twovnl.Txn.begin_ wh in
  Alcotest.(check bool) "second begin rejected" true
    (try ignore (Twovnl.Txn.begin_ wh); false with Invalid_argument _ -> true);
  Twovnl.Txn.commit m

let test_txn_use_after_commit_rejected () =
  let _db, wh = fresh () in
  let m = Twovnl.Txn.begin_ wh in
  Twovnl.Txn.commit m;
  Alcotest.(check bool) "raises" true
    (try ignore (Twovnl.Txn.sql m "DELETE FROM DailySales"); false
     with Invalid_argument _ -> true)

let current_view wh =
  let s = Twovnl.Session.begin_ wh in
  let rows = Twovnl.Session.read_table wh s "DailySales" in
  Twovnl.Session.end_ wh s;
  List.sort Tuple.compare rows

let test_rollback_restores_visible_state () =
  let _db, wh = fresh () in
  let before = current_view wh in
  let m = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m "UPDATE DailySales SET total_sales = 0 WHERE state = 'CA'");
  ignore (Twovnl.Txn.sql m "DELETE FROM DailySales WHERE city = 'Berkeley'");
  Twovnl.Txn.insert m ~table:"DailySales"
    [ Value.Str "Fresno"; Value.Str "CA"; Value.Str "tennis"; Value.date_of_mdy 10 16 96;
      Value.Int 300 ];
  let reverted = Twovnl.Txn.abort m in
  Alcotest.(check bool) "reverted some tuples" true (reverted >= 4);
  check Alcotest.int "currentVN unchanged" 1 (Twovnl.current_vn wh);
  check Fixtures.base_testable "state restored" before (current_view wh)

let test_rollback_insert_over_delete () =
  let _db, wh = fresh () in
  (* Commit a delete first. *)
  let m1 = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m1 "DELETE FROM DailySales WHERE city = 'Novato'");
  Twovnl.Txn.commit m1;
  let before = current_view wh in
  (* Now a transaction re-inserts the deleted key and aborts. *)
  let m2 = Twovnl.Txn.begin_ wh in
  Twovnl.Txn.insert m2 ~table:"DailySales"
    [ Value.Str "Novato"; Value.Str "CA"; Value.Str "rollerblades"; Value.date_of_mdy 10 13 96;
      Value.Int 999 ];
  ignore (Twovnl.Txn.abort m2);
  check Fixtures.base_testable "deleted key stays deleted" before (current_view wh);
  (* And the warehouse still works: a new transaction can re-insert. *)
  let m3 = Twovnl.Txn.begin_ wh in
  Twovnl.Txn.insert m3 ~table:"DailySales"
    [ Value.Str "Novato"; Value.Str "CA"; Value.Str "rollerblades"; Value.date_of_mdy 10 13 96;
      Value.Int 500 ];
  Twovnl.Txn.commit m3;
  let s = Twovnl.Session.begin_ wh in
  check Alcotest.int "re-inserted" 500 (city_total wh s "Novato")

let test_update_by_key_and_delete_by_key () =
  let _db, wh = fresh () in
  let m = Twovnl.Txn.begin_ wh in
  let key =
    [ Value.Str "Berkeley"; Value.Str "CA"; Value.Str "racquetball"; Value.date_of_mdy 10 14 96 ]
  in
  Alcotest.(check bool) "update hits" true
    (Twovnl.Txn.update_by_key m ~table:"DailySales" ~key ~set:[ ("total_sales", Value.Int 1) ]);
  Alcotest.(check bool) "delete hits" true (Twovnl.Txn.delete_by_key m ~table:"DailySales" ~key);
  Alcotest.(check bool) "second delete misses (logically dead)" false
    (Twovnl.Txn.delete_by_key m ~table:"DailySales" ~key);
  Twovnl.Txn.commit m

let test_gc_reclaims_deleted () =
  let _db, wh = fresh () in
  let m = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m "DELETE FROM DailySales WHERE city = 'San Jose'");
  Twovnl.Txn.commit m;
  let h = Twovnl.handle_exn wh "DailySales" in
  check Alcotest.int "tuples still physical" 4 (Table.tuple_count (Twovnl.table h));
  (* An old session pins the horizon. *)
  let collected = Twovnl.collect_garbage wh in
  check Alcotest.int "no sessions: reclaim both" 2 collected;
  check Alcotest.int "physical count drops" 2 (Table.tuple_count (Twovnl.table h))

let test_gc_respects_active_session () =
  let _db, wh = fresh () in
  let s = Twovnl.Session.begin_ wh in
  (* Session at vn 1; a txn at vn 2 deletes. *)
  let m = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m "DELETE FROM DailySales WHERE city = 'San Jose'");
  Twovnl.Txn.commit m;
  check Alcotest.int "session pins deleted tuples" 0 (Twovnl.collect_garbage wh);
  Twovnl.Session.end_ wh s;
  check Alcotest.int "after session ends" 2 (Twovnl.collect_garbage wh)

let test_gc_preserves_reader_view () =
  let _db, wh = fresh () in
  let m = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m "DELETE FROM DailySales WHERE city = 'Novato'");
  Twovnl.Txn.commit m;
  let s = Twovnl.Session.begin_ wh in
  let before = Twovnl.Session.read_table wh s "DailySales" in
  ignore (Twovnl.collect_garbage wh);
  let after = Twovnl.Session.read_table wh s "DailySales" in
  check Fixtures.base_testable "view unchanged by gc"
    (List.sort Tuple.compare before)
    (List.sort Tuple.compare after)

let test_nvnl_session_survives_two_txns () =
  let _db, wh = fresh ~n:3 () in
  let s = Twovnl.Session.begin_ wh in
  let commit_bump () =
    let m = Twovnl.Txn.begin_ wh in
    ignore
      (Twovnl.Txn.sql m
         "UPDATE DailySales SET total_sales = total_sales + 100 WHERE city = 'San Jose'");
    Twovnl.Txn.commit m
  in
  commit_bump ();
  commit_bump ();
  (* Under 3VNL the engine-level reader still reconstructs version 1 even
     though two maintenance transactions have touched the tuples. *)
  let rows = Twovnl.Session.read_table wh s "DailySales" in
  let total =
    List.fold_left
      (fun acc t ->
        match Tuple.get t 4 with Value.Int n -> acc + n | _ -> acc)
      0 rows
  in
  check Alcotest.int "version-1 totals intact" (11500 + 12000 + 8000) total

let test_2vnl_session_expires_at_second_txn () =
  let _db, wh = fresh () in
  let s = Twovnl.Session.begin_ wh in
  List.iter
    (fun _ ->
      let m = Twovnl.Txn.begin_ wh in
      ignore
        (Twovnl.Txn.sql m
           "UPDATE DailySales SET total_sales = total_sales + 100 WHERE city = 'San Jose'");
      Twovnl.Txn.commit m)
    [ (); () ];
  Alcotest.(check bool) "2VNL session expired" true
    (try ignore (Twovnl.Session.read_table wh s "DailySales"); false
     with Twovnl.Expired _ -> true)

let test_cross_table_consistency () =
  (* Two registered tables maintained in one transaction stay mutually
     consistent for every session (the multi-view warehouse property). *)
  let db = Database.create () in
  let wh = Twovnl.init db in
  ignore (Twovnl.register_table wh ~name:"A" Fixtures.daily_sales);
  ignore (Twovnl.register_table wh ~name:"B" Fixtures.daily_sales);
  Twovnl.load_initial wh "A" initial_rows;
  Twovnl.load_initial wh "B" initial_rows;
  let s = Twovnl.Session.begin_ wh in
  let totals session name =
    match
      (Twovnl.Session.query wh session (Printf.sprintf "SELECT SUM(total_sales) FROM %s" name))
        .Executor.rows
    with
    | [ [ Value.Int n ] ] -> n
    | _ -> 0
  in
  let m = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m "UPDATE A SET total_sales = total_sales + 100 WHERE city = 'San Jose'");
  (* Mid-transaction: A touched, B not — the session must still see them
     agree (both at the old version). *)
  check Alcotest.int "mid-txn agreement" (totals s "A") (totals s "B");
  ignore (Twovnl.Txn.sql m "UPDATE B SET total_sales = total_sales + 100 WHERE city = 'San Jose'");
  Twovnl.Txn.commit m;
  check Alcotest.int "old session agreement" (totals s "A") (totals s "B");
  let s2 = Twovnl.Session.begin_ wh in
  check Alcotest.int "new session agreement" (totals s2 "A") (totals s2 "B");
  Alcotest.(check bool) "new session sees the change" true (totals s2 "A" > totals s "A")

let suite =
  [
    Alcotest.test_case "session sees loaded data" `Quick test_session_sees_loaded_data;
    Alcotest.test_case "reader isolated from active txn" `Quick
      test_reader_isolated_from_active_txn;
    Alcotest.test_case "session expires at next txn begin" `Quick
      test_session_expires_when_next_txn_begins;
    Alcotest.test_case "single maintenance txn" `Quick test_single_maintenance_txn;
    Alcotest.test_case "txn use after commit rejected" `Quick test_txn_use_after_commit_rejected;
    Alcotest.test_case "no-log rollback restores state" `Quick test_rollback_restores_visible_state;
    Alcotest.test_case "rollback of insert-over-delete" `Quick test_rollback_insert_over_delete;
    Alcotest.test_case "update/delete by key" `Quick test_update_by_key_and_delete_by_key;
    Alcotest.test_case "gc reclaims deleted tuples" `Quick test_gc_reclaims_deleted;
    Alcotest.test_case "gc respects active sessions" `Quick test_gc_respects_active_session;
    Alcotest.test_case "gc preserves reader views" `Quick test_gc_preserves_reader_view;
    Alcotest.test_case "3VNL session survives two txns" `Quick test_nvnl_session_survives_two_txns;
    Alcotest.test_case "2VNL session expires at second txn" `Quick
      test_2vnl_session_expires_at_second_txn;
    Alcotest.test_case "cross-table consistency in one txn" `Quick
      test_cross_table_consistency;
  ]
