(* Unit and property tests for Vnl_util. *)

module Xorshift = Vnl_util.Xorshift
module Stats = Vnl_util.Stats
module Ascii_table = Vnl_util.Ascii_table
module Sim_clock = Vnl_util.Sim_clock
module Ids = Vnl_util.Ids

let check = Alcotest.check

let test_prng_deterministic () =
  let a = Xorshift.create 42 and b = Xorshift.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Xorshift.int a 1000) (Xorshift.int b 1000)
  done

let test_prng_bounds () =
  let rng = Xorshift.create 7 in
  for _ = 1 to 1000 do
    let x = Xorshift.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_prng_int_in () =
  let rng = Xorshift.create 9 in
  for _ = 1 to 1000 do
    let x = Xorshift.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (x >= -5 && x <= 5)
  done

let test_prng_split_independent () =
  let a = Xorshift.create 3 in
  let b = Xorshift.split a in
  let xs = List.init 20 (fun _ -> Xorshift.int a 1000) in
  let ys = List.init 20 (fun _ -> Xorshift.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_chance_extremes () =
  let rng = Xorshift.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Xorshift.chance rng 1.0);
    Alcotest.(check bool) "p=0 never true" false (Xorshift.chance rng 0.0)
  done

let test_prng_pick () =
  let rng = Xorshift.create 11 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "picked element" true (Array.mem (Xorshift.pick rng arr) arr)
  done

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "empty" 0.0 (Stats.mean [])

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check (Alcotest.float 1e-9) "pair" 1.0 (Stats.stddev [ 1.0; 3.0 ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile 50.0 xs);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.percentile 99.0 xs);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile 100.0 xs)

let test_stats_summary () =
  let s = Stats.summarize [ 4.0; 1.0; 3.0; 2.0 ] in
  check Alcotest.int "n" 4 s.Stats.n;
  check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 4.0 s.Stats.max;
  check (Alcotest.float 1e-9) "total" 10.0 s.Stats.total

let test_table_render_plain () =
  let out = Ascii_table.render ~header:[ "x" ] [ [ "hello" ] ] in
  Alcotest.(check bool) "has rule lines" true (String.contains out '+');
  Alcotest.(check bool) "has cell" true (String.contains out 'h')

let test_fmt_pct () = check Alcotest.string "pct" "21.4%" (Ascii_table.fmt_pct 0.214)

let test_clock () =
  let c = Sim_clock.create () in
  check Alcotest.int "starts at 0" 0 (Sim_clock.now c);
  Sim_clock.advance c 10;
  check Alcotest.int "advanced" 10 (Sim_clock.now c);
  Sim_clock.advance_to c 5;
  check Alcotest.int "advance_to past is no-op" 10 (Sim_clock.now c);
  Sim_clock.advance_to c 30;
  check Alcotest.int "advance_to future" 30 (Sim_clock.now c)

let test_clock_pp () =
  let s = Format.asprintf "%a" Sim_clock.pp_time_of_day (24 * 60 + 90) in
  check Alcotest.string "day1 01:30" "day1 01:30" s

let test_ids () =
  let ids = Ids.create () in
  check Alcotest.int "first" 1 (Ids.next ids);
  check Alcotest.int "second" 2 (Ids.next ids);
  check Alcotest.int "peek" 3 (Ids.peek ids);
  Ids.reset ids;
  check Alcotest.int "reset" 1 (Ids.next ids)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile is within sample bounds" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (xs, p) ->
      QCheck.assume (xs <> []);
      let v = Stats.percentile p xs in
      v >= List.fold_left min infinity xs && v <= List.fold_left max neg_infinity xs)

let qcheck_mean_bounds =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.) 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let m = Stats.mean xs in
      m >= List.fold_left min infinity xs -. 1e-9
      && m <= List.fold_left max neg_infinity xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng int_in" `Quick test_prng_int_in;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng chance extremes" `Quick test_prng_chance_extremes;
    Alcotest.test_case "prng pick" `Quick test_prng_pick;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "table render basics" `Quick test_table_render_plain;
    Alcotest.test_case "fmt pct" `Quick test_fmt_pct;
    Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "clock pp" `Quick test_clock_pp;
    Alcotest.test_case "ids" `Quick test_ids;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_mean_bounds;
  ]
