(* Structural property tests for the schema extension and slot mechanics:
   the index maps must tile the extended tuple exactly, and shift_forward
   must invert push_back whenever the last slot is free. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Schema_ext = Vnl_core.Schema_ext
module Maintenance = Vnl_core.Maintenance
module Op = Vnl_core.Op
module Xorshift = Vnl_util.Xorshift

(* Random base schema: one key int + a mix of updatable/plain ints. *)
let gen_base rng =
  let extra = 1 + Xorshift.int rng 5 in
  Schema.make
    (Schema.attr ~key:true "k" Dtype.Int
    :: List.init extra (fun i ->
           Schema.attr ~updatable:(Xorshift.bool rng) (Printf.sprintf "a%d" i) Dtype.Int))

let qcheck_layout_tiles =
  QCheck.Test.make ~name:"extended-schema index maps tile the tuple exactly" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 1_000_000) (int_range 2 6))
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n))
    (fun (seed, n) ->
      let rng = Xorshift.create seed in
      let base = gen_base rng in
      let ext = Schema_ext.extend ~n base in
      let arity = Schema.arity (Schema_ext.extended ext) in
      let hit = Array.make arity 0 in
      for slot = 1 to Schema_ext.slots ext do
        hit.(Schema_ext.tuple_vn_index ext ~slot) <- hit.(Schema_ext.tuple_vn_index ext ~slot) + 1;
        hit.(Schema_ext.operation_index ext ~slot) <-
          hit.(Schema_ext.operation_index ext ~slot) + 1;
        List.iter
          (fun j ->
            hit.(Schema_ext.pre_index ext ~slot j) <- hit.(Schema_ext.pre_index ext ~slot j) + 1)
          (Schema_ext.updatable_base_indices ext)
      done;
      for j = 0 to Schema_ext.base_arity ext - 1 do
        hit.(Schema_ext.base_index ext j) <- hit.(Schema_ext.base_index ext j) + 1
      done;
      Array.for_all (fun c -> c = 1) hit)

let qcheck_names_resolve =
  QCheck.Test.make ~name:"slot attribute names resolve to their indices" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range 1 1_000_000) (int_range 2 5))
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n))
    (fun (seed, n) ->
      let rng = Xorshift.create seed in
      let base = gen_base rng in
      let ext = Schema_ext.extend ~n base in
      let schema = Schema_ext.extended ext in
      let ok = ref true in
      for slot = 1 to Schema_ext.slots ext do
        if
          Schema.index_of schema (Schema_ext.tuple_vn_name ext ~slot)
          <> Schema_ext.tuple_vn_index ext ~slot
        then ok := false;
        if
          Schema.index_of schema (Schema_ext.operation_name ext ~slot)
          <> Schema_ext.operation_index ext ~slot
        then ok := false;
        List.iter
          (fun j ->
            let a = Schema.attribute base j in
            if
              Schema.index_of schema (Schema_ext.pre_name ext ~slot a.Schema.name)
              <> Schema_ext.pre_index ext ~slot j
            then ok := false)
          (Schema_ext.updatable_base_indices ext)
      done;
      !ok)

(* Build a random extended tuple with the first [occupied] slots filled. *)
let gen_ext_tuple rng ext ~occupied =
  let schema = Schema_ext.extended ext in
  let values = Array.make (Schema.arity schema) Value.Null in
  for j = 0 to Schema_ext.base_arity ext - 1 do
    values.(Schema_ext.base_index ext j) <- Value.Int (Xorshift.int rng 1000)
  done;
  let vn = ref (occupied * 3) in
  for slot = 1 to occupied do
    values.(Schema_ext.tuple_vn_index ext ~slot) <- Value.Int !vn;
    vn := !vn - 3;
    values.(Schema_ext.operation_index ext ~slot) <-
      Op.to_value (Xorshift.pick rng [| Op.Insert; Op.Update; Op.Delete |]);
    List.iter
      (fun j ->
        values.(Schema_ext.pre_index ext ~slot j) <- Value.Int (Xorshift.int rng 1000))
      (Schema_ext.updatable_base_indices ext)
  done;
  Tuple.of_array schema values

let qcheck_shift_forward_inverts_push_back =
  QCheck.Test.make ~name:"shift_forward inverts push_back (free last slot)" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 1_000_000) (int_range 3 6))
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n))
    (fun (seed, n) ->
      let rng = Xorshift.create seed in
      let base = gen_base rng in
      let ext = Schema_ext.extend ~n base in
      (* Leave the last slot unused so push_back is lossless. *)
      let occupied = 1 + Xorshift.int rng (Schema_ext.slots ext - 1) in
      let t = gen_ext_tuple rng ext ~occupied in
      let roundtrip = Maintenance.shift_forward ext (Maintenance.push_back ext t) in
      (* push_back leaves slot 1 for the caller to overwrite; after
         shift_forward it is restored from the copy in slot 2, so the whole
         tuple must be back. *)
      Tuple.equal t roundtrip)

let qcheck_push_back_preserves_history =
  QCheck.Test.make ~name:"push_back shifts every slot down by one" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 1_000_000) (int_range 2 6))
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n))
    (fun (seed, n) ->
      let rng = Xorshift.create seed in
      let base = gen_base rng in
      let ext = Schema_ext.extend ~n base in
      let occupied = 1 + Xorshift.int rng (Schema_ext.slots ext) in
      let t = gen_ext_tuple rng ext ~occupied in
      let pushed = Maintenance.push_back ext t in
      let ok = ref true in
      for slot = 1 to Schema_ext.slots ext - 1 do
        if Schema_ext.tuple_vn ext ~slot:(slot + 1) pushed <> Schema_ext.tuple_vn ext ~slot t
        then ok := false;
        List.iter
          (fun j ->
            if
              not
                (Value.equal
                   (Tuple.get pushed (Schema_ext.pre_index ext ~slot:(slot + 1) j))
                   (Tuple.get t (Schema_ext.pre_index ext ~slot j)))
            then ok := false)
          (Schema_ext.updatable_base_indices ext)
      done;
      (* Base attributes are untouched by push_back. *)
      for j = 0 to Schema_ext.base_arity ext - 1 do
        if
          not
            (Value.equal
               (Tuple.get pushed (Schema_ext.base_index ext j))
               (Tuple.get t (Schema_ext.base_index ext j)))
        then ok := false
      done;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_layout_tiles;
    QCheck_alcotest.to_alcotest qcheck_names_resolve;
    QCheck_alcotest.to_alcotest qcheck_shift_forward_inverts_push_back;
    QCheck_alcotest.to_alcotest qcheck_push_back_preserves_history;
  ]
