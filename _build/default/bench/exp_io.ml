(* IO: physical I/O of readers and maintenance under 2VNL vs MV2PL vs a
   single-version baseline (§6).

   The same workload — load N summary tuples, then one maintenance
   transaction updating a random fraction in random order — runs on three
   engines sharing page size and a deliberately small buffer pool, so
   physical reads approximate page touches.  Measurements:

   - maintenance I/O (reads + writes to apply the batch, flushed);
   - a full reader scan of the *pre-transaction* version while the
     transaction is uncommitted (2VNL: same pages, pre-update attributes;
     MV2PL: chases before-images into the version pool; baseline: has no
     old version — its readers would block or read dirty data);
   - a full scan of the current version after commit;
   - pages occupied.

   Expected shape (§6): 2VNL never pays extra per-tuple I/Os but its wider
   tuples mean fewer per page; MV2PL pays pool writes on the write path and
   pool reads on old-version scans. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Buffer_pool = Vnl_storage.Buffer_pool
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Twovnl = Vnl_core.Twovnl
module Reader = Vnl_core.Reader
module Mv2pl = Vnl_txn.Mv2pl
module Tv_table = Vnl_txn.Two_v2pl_table
module Xorshift = Vnl_util.Xorshift
module T = Vnl_util.Ascii_table

let tuples = 20_000

let update_fraction = 0.3

let pool_frames = 16

(* A summary-table-like schema: int key, five descriptive attributes, two
   updatable aggregates; 32 bytes per base tuple. *)
let base_schema =
  Schema.make
    (Schema.attr ~key:true "k" Dtype.Int
    :: (List.init 5 (fun i -> Schema.attr (Printf.sprintf "d%d" i) Dtype.Int)
       @ [ Schema.attr ~updatable:true "sum1" Dtype.Int;
           Schema.attr ~updatable:true "sum2" Dtype.Int ]))

let mk_tuple k =
  Tuple.make base_schema
    (Value.Int k :: List.init 5 (fun i -> Value.Int (k + i)) @ [ Value.Int 100; Value.Int 200 ])

let victims () =
  let rng = Xorshift.create 99 in
  let ks = Array.init tuples (fun k -> k) in
  Xorshift.shuffle rng ks;
  Array.sub ks 0 (int_of_float (float_of_int tuples *. update_fraction))

type counters = { reads : int; writes : int }

let measure db f =
  Database.drop_cache db;
  Database.reset_io_stats db;
  let result = f () in
  Vnl_storage.Buffer_pool.flush_all (Database.pool db);
  let s = Database.io_stats db in
  (result, { reads = s.Buffer_pool.misses; writes = s.Buffer_pool.physical_writes })

let fmt c = Printf.sprintf "%dr + %dw" c.reads c.writes

type row = {
  name : string;
  maintenance : counters;
  old_scan : string;
  current_scan : counters;
  pages : int;
}

let print_rows rows =
  T.print
    ~header:
      [ "engine"; "maintenance I/O"; "old-version scan"; "current scan"; "pages" ]
    (List.map
       (fun r ->
         [ r.name; fmt r.maintenance; r.old_scan; fmt r.current_scan; string_of_int r.pages ])
       rows)

let run_baseline () =
  let db = Database.create ~pool_capacity:pool_frames () in
  let table = Database.create_table db "T" base_schema in
  let rids = Array.init tuples (fun k -> Table.insert table (mk_tuple k)) in
  let vs = victims () in
  let maintenance =
    snd
      (measure db (fun () ->
           Array.iter
             (fun k ->
               match Table.get table rids.(k) with
               | Some t -> Table.update_in_place table rids.(k) (Tuple.set t 6 (Value.Int 999))
               | None -> ())
             vs))
  in
  let current_scan =
    snd (measure db (fun () -> Table.scan table (fun _ _ -> ())))
  in
  {
    name = "single-version";
    maintenance;
    old_scan = "unavailable";
    current_scan;
    pages = Table.page_count table;
  }

let run_2vnl () =
  let db = Database.create ~pool_capacity:pool_frames () in
  let wh = Twovnl.init db in
  let handle = Twovnl.register_table wh ~name:"T" base_schema in
  Twovnl.load_initial wh "T" (List.init tuples mk_tuple);
  let vs = victims () in
  let txn = Twovnl.Txn.begin_ wh in
  let maintenance =
    snd
      (measure db (fun () ->
           Array.iter
             (fun k ->
               ignore
                 (Twovnl.Txn.update_by_key txn ~table:"T" ~key:[ Value.Int k ]
                    ~set:[ ("sum1", Value.Int 999) ]))
             vs))
  in
  (* Readers continue on the pre-transaction version while the transaction
     is active. *)
  let old_scan =
    snd
      (measure db (fun () ->
           Table.scan (Twovnl.table handle) (fun _ t ->
               ignore (Reader.extract (Twovnl.ext handle) ~session_vn:1 t))))
  in
  Twovnl.Txn.commit txn;
  let current_scan =
    snd
      (measure db (fun () ->
           Table.scan (Twovnl.table handle) (fun _ t ->
               ignore (Reader.extract (Twovnl.ext handle) ~session_vn:2 t))))
  in
  {
    name = "2VNL";
    maintenance;
    old_scan = fmt old_scan;
    current_scan;
    pages = Table.page_count (Twovnl.table handle);
  }

let run_mv2pl () =
  let db = Database.create ~pool_capacity:pool_frames () in
  let table = Database.create_table db "T" base_schema in
  let rids = Array.init tuples (fun k -> Table.insert table (mk_tuple k)) in
  let mv = Mv2pl.create table in
  let vs = victims () in
  let snapshot = Mv2pl.begin_snapshot mv in
  let _w = Mv2pl.begin_writer mv in
  let maintenance =
    snd
      (measure db (fun () ->
           Array.iter
             (fun k ->
               match Table.get table rids.(k) with
               | Some t -> Mv2pl.writer_update mv rids.(k) (Tuple.set t 6 (Value.Int 999))
               | None -> ())
             vs))
  in
  let old_scan =
    snd (measure db (fun () -> Mv2pl.scan mv ~snapshot (fun _ -> ())))
  in
  Mv2pl.commit_writer mv;
  let snapshot2 = Mv2pl.begin_snapshot mv in
  let current_scan =
    snd (measure db (fun () -> Mv2pl.scan mv ~snapshot:snapshot2 (fun _ -> ())))
  in
  {
    name = "MV2PL + version pool";
    maintenance;
    old_scan = fmt old_scan;
    current_scan;
    pages = Table.page_count table + Mv2pl.pool_pages mv;
  }

let run_2v2pl () =
  let db = Database.create ~pool_capacity:pool_frames () in
  let table = Database.create_table db "T" base_schema in
  let rids = Array.init tuples (fun k -> Table.insert table (mk_tuple k)) in
  let tv = Tv_table.create table in
  let vs = victims () in
  Tv_table.begin_writer tv;
  let maintenance =
    snd
      (measure db (fun () ->
           (* Writing the second version costs no table I/O until commit;
              the commit installs every version in place. *)
           Array.iter
             (fun k ->
               match Tv_table.writer_read tv rids.(k) with
               | Some t -> Tv_table.writer_update tv rids.(k) (Tuple.set t 6 (Value.Int 999))
               | None -> ())
             vs;
           Tv_table.commit tv))
  in
  let old_scan = "until commit only" in
  let current_scan = snd (measure db (fun () -> Tv_table.scan_committed tv (fun _ -> ()))) in
  {
    name = "2V2PL";
    maintenance;
    old_scan;
    current_scan;
    pages = Table.page_count table;
  }

let run () =
  T.section "IO  Physical I/O: 2VNL vs MV2PL vs 2V2PL vs single-version (§6)";
  Printf.printf
    "%d tuples (%d-byte base records), one maintenance transaction updating %.0f%%\n\
     in random order; %d-frame buffer pool, 4096-byte pages.\n\n"
    tuples (Schema.width base_schema) (100.0 *. update_fraction) pool_frames;
  print_rows [ run_baseline (); run_2vnl (); run_mv2pl (); run_2v2pl () ];
  print_endline
    "-> 2VNL's old-version scan touches exactly the relation's own pages (no extra\n\
    \   per-tuple I/O, just fewer tuples per page); MV2PL's old-version scan adds\n\
    \   version-pool reads and its write path adds pool writes; 2V2PL's readers keep\n\
    \   the committed pages but its previous versions die at commit, so the writer\n\
    \   waits on them instead (BLOCK experiment).  The single-version engine cannot\n\
    \   serve the old version at all.";
  T.subsection "latch traffic (locking overhead eliminated, §2.2)";
  let db = Database.create ~pool_capacity:pool_frames () in
  let wh = Twovnl.init db in
  let handle = Twovnl.register_table wh ~name:"L" base_schema in
  Twovnl.load_initial wh "L" (List.init 2_000 mk_tuple);
  let before = Vnl_storage.Heap_file.latch_acquisitions (Table.heap (Twovnl.table handle)) in
  let txn = Twovnl.Txn.begin_ wh in
  for k = 0 to 599 do
    ignore
      (Twovnl.Txn.update_by_key txn ~table:"L" ~key:[ Value.Int k ]
         ~set:[ ("sum1", Value.Int k) ])
  done;
  let writes_latched =
    Vnl_storage.Heap_file.latch_acquisitions (Table.heap (Twovnl.table handle)) - before
  in
  Table.scan (Twovnl.table handle) (fun _ t ->
      ignore (Reader.extract (Twovnl.ext handle) ~session_vn:1 t));
  let after_scan =
    Vnl_storage.Heap_file.latch_acquisitions (Table.heap (Twovnl.table handle))
  in
  Twovnl.Txn.commit txn;
  T.print ~header:[ "actor"; "locks"; "latch acquisitions" ]
    [
      [ "maintenance txn (600 logical updates)"; "0"; string_of_int writes_latched ];
      [ "reader (full old-version scan)"; "0";
        string_of_int (after_scan - before - writes_latched) ];
    ];
  print_endline
    "-> 2VNL places no locks at all; the only synchronization is one short\n\
     tuple latch per physical modification, released immediately (§4), and\n\
     readers acquire nothing."
