(* ABLATION: why the net-effect rules of §3.3 matter.

   A naive maintenance variant records the *raw* last operation on each
   tuple and always copies current values into the pre-update attributes —
   ignoring the paper's same-transaction combination rules (insert+update =
   insert, delete+insert = update, ...).  Random maintenance transactions
   that touch tuples more than once are applied both ways; reader views at
   the previous version are checked against the true committed snapshot.

   The correct implementation is always exact; the naive variant shows the
   two §3.3 failure modes: readers resurrect pre-images of freshly inserted
   tuples (raw op = update instead of insert), and same-transaction
   re-updates clobber the committed pre-image readers still need. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Op = Vnl_core.Op
module Schema_ext = Vnl_core.Schema_ext
module Reader = Vnl_core.Reader
module Maintenance = Vnl_core.Maintenance
module Xorshift = Vnl_util.Xorshift
module T = Vnl_util.Ascii_table

let kv_schema =
  Schema.make [ Schema.attr ~key:true "id" Dtype.Int; Schema.attr ~updatable:true "v" Dtype.Int ]

let kv id v = Tuple.make kv_schema [ Value.Int id; Value.Int v ]

(* The naive variant: raw operation recording, unconditional PV <- CV. *)
let naive_apply ext table ~vn op =
  let set_slot1 tuple ~op ~copy_pre mv =
    let updates =
      [
        (Schema_ext.tuple_vn_index ext ~slot:1, Value.Int vn);
        (Schema_ext.operation_index ext ~slot:1, Op.to_value op);
      ]
      @ (if copy_pre then
           [ (Schema_ext.pre_index ext ~slot:1 1, Tuple.get tuple (Schema_ext.base_index ext 1)) ]
         else [])
      @ match mv with Some v -> [ (Schema_ext.base_index ext 1, v) ] | None -> []
    in
    Tuple.set_many tuple updates
  in
  match op with
  | `Insert (id, v) -> (
    match Table.find_by_key table [ Value.Int id ] with
    | None -> ignore (Table.insert table (Schema_ext.fresh_insert ext ~vn (kv id v)))
    | Some (rid, existing) ->
      Table.update_in_place table rid
        (set_slot1 existing ~op:Op.Insert ~copy_pre:false (Some (Value.Int v))))
  | `Update (id, v) -> (
    match Table.find_by_key table [ Value.Int id ] with
    | None -> ()
    | Some (rid, existing) ->
      (* Always copies PV <- CV, clobbering the committed pre-image on the
         second same-transaction touch. *)
      Table.update_in_place table rid
        (set_slot1 existing ~op:Op.Update ~copy_pre:true (Some (Value.Int v))))
  | `Delete id -> (
    match Table.find_by_key table [ Value.Int id ] with
    | None -> ()
    | Some (rid, existing) ->
      Table.update_in_place table rid (set_slot1 existing ~op:Op.Delete ~copy_pre:true None))

let correct_apply ext table ~vn op =
  match op with
  | `Insert (id, v) -> ignore (Maintenance.apply_insert ext table ~vn (kv id v))
  | `Update (id, v) -> (
    match Table.find_by_key table [ Value.Int id ] with
    | Some (rid, tuple) when Maintenance.is_logically_live ext tuple ->
      Maintenance.apply_update ext table ~vn rid [ (1, Value.Int v) ]
    | _ -> ())
  | `Delete id -> (
    match Table.find_by_key table [ Value.Int id ] with
    | Some (rid, tuple) when Maintenance.is_logically_live ext tuple ->
      Maintenance.apply_delete ext table ~vn rid
    | _ -> ())

(* Generate one transaction of ops over a small key space such that ops are
   logically valid (tracked against [live]) and tuples get touched more than
   once — the regime where net effects matter. *)
let gen_txn rng live =
  let ops = ref [] in
  let state = Hashtbl.copy live in
  for _ = 1 to 2 + Xorshift.int rng 6 do
    let id = 1 + Xorshift.int rng 4 in
    let v = Xorshift.int rng 1000 in
    if Hashtbl.mem state id then
      if Xorshift.bool rng then begin
        ops := `Update (id, v) :: !ops;
        Hashtbl.replace state id v
      end
      else begin
        ops := `Delete id :: !ops;
        Hashtbl.remove state id
      end
    else begin
      ops := `Insert (id, v) :: !ops;
      Hashtbl.replace state id v
    end
  done;
  (List.rev !ops, state)

let view_of ext table ~session_vn =
  try
    Some
      (List.sort compare
         (List.map
            (fun t ->
              match (Tuple.get t 0, Tuple.get t 1) with
              | Value.Int id, Value.Int v -> (id, v)
              | _ -> (-1, -1))
            (Reader.visible_relation ext ~session_vn table)))
  with Reader.Session_expired _ -> None

let snapshot_of_table tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let run_variant ~apply ~histories =
  let rng = Xorshift.create 2718 in
  let wrong_old = ref 0 and wrong_new = ref 0 in
  for _h = 1 to histories do
    let db = Database.create () in
    let ext = Schema_ext.extend kv_schema in
    let table = Database.create_table db "T" (Schema_ext.extended ext) in
    (* Committed base state at vn 1. *)
    let live = Hashtbl.create 8 in
    for id = 1 to 3 do
      let v = Xorshift.int rng 1000 in
      ignore (Table.insert table (Schema_ext.fresh_insert ext ~vn:1 (kv id v)));
      Hashtbl.replace live id v
    done;
    let old_snapshot = snapshot_of_table live in
    let ops, new_state = gen_txn rng live in
    List.iter (fun op -> apply ext table ~vn:2 op) ops;
    (match view_of ext table ~session_vn:1 with
    | Some view when view = old_snapshot -> ()
    | _ -> incr wrong_old);
    (match view_of ext table ~session_vn:2 with
    | Some view when view = snapshot_of_table new_state -> ()
    | _ -> incr wrong_new)
  done;
  (!wrong_old, !wrong_new)

let run () =
  T.section "ABLATION  Net-effect operation tracking disabled (§3.3)";
  let histories = 500 in
  let c_old, c_new = run_variant ~apply:correct_apply ~histories in
  let n_old, n_new = run_variant ~apply:naive_apply ~histories in
  T.print
    ~header:
      [ "maintenance variant"; "histories"; "wrong previous-version views";
        "wrong current-version views" ]
    [
      [ "decision tables with net effects (§3.3)"; string_of_int histories;
        string_of_int c_old; string_of_int c_new ];
      [ "naive: raw last op, unconditional PV<-CV"; string_of_int histories;
        string_of_int n_old; string_of_int n_new ];
    ];
  Printf.printf
    "-> without the §3.3 combination rules, %.0f%% of multi-touch transactions leave\n\
    \   readers of the previous version with a wrong snapshot; the paper's tables\n\
    \   make both views exact in every history.\n"
    (100.0 *. float_of_int n_old /. float_of_int histories)
