(* Regeneration of the paper's worked examples: Figures 3-7, Tables 1-4,
   Examples 2.1, 3.2, 3.3, 4.1-4.4 and 5.1.  Each experiment prints the
   artifact as computed by the implementation and, where the paper gives the
   expected content, checks it. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Op = Vnl_core.Op
module Schema_ext = Vnl_core.Schema_ext
module Reader = Vnl_core.Reader
module Maintenance = Vnl_core.Maintenance
module Rewrite = Vnl_core.Rewrite
module T = Vnl_util.Ascii_table

let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let base_row city state pl m d y sales =
  Tuple.make daily_sales
    [ Value.Str city; Value.Str state; Value.Str pl; Value.date_of_mdy m d y; Value.Int sales ]

let ext_row ext vn op city state pl m d y sales pre =
  Tuple.make (Schema_ext.extended ext)
    [ Value.Int vn; Op.to_value op; Value.Str city; Value.Str state; Value.Str pl;
      Value.date_of_mdy m d y; Value.Int sales; pre ]

let figure4_table () =
  let db = Database.create () in
  let ext = Schema_ext.extend daily_sales in
  let table = Database.create_table db "DailySales" (Schema_ext.extended ext) in
  List.iter
    (fun t -> ignore (Table.insert table t))
    [
      ext_row ext 3 Op.Insert "San Jose" "CA" "golf equip" 10 14 96 10000 Value.Null;
      ext_row ext 4 Op.Insert "San Jose" "CA" "golf equip" 10 15 96 1500 Value.Null;
      ext_row ext 4 Op.Update "Berkeley" "CA" "racquetball" 10 14 96 12000 (Value.Int 10000);
      ext_row ext 4 Op.Delete "Novato" "CA" "rollerblades" 10 13 96 8000 (Value.Int 8000);
    ];
  (db, ext, table)

let print_extended ext table =
  let header = Schema.names (Schema_ext.extended ext) in
  let rows =
    List.map
      (fun (_, t) ->
        List.map2
          (fun name v ->
            if String.equal name "operation" then Op.to_string (Op.of_value v)
            else Value.to_string v)
          header (Tuple.values t))
      (Table.to_list table)
  in
  T.print ~header rows

(* ---------- FIG3: extended schema and storage overhead ---------- *)

let fig3 () =
  T.section "FIG3  Extended DailySales schema (paper Figure 3)";
  let ext = Schema_ext.extend daily_sales in
  let e = Schema_ext.extended ext in
  T.print ~header:[ "attribute"; "type"; "bytes"; "role" ]
    (List.map
       (fun a ->
         let role =
           if a.Schema.key then "key (group-by)"
           else if a.Schema.updatable then "updatable"
           else if Schema_ext.is_extended_attribute ext a.Schema.name then "2VNL bookkeeping"
           else ""
         in
         [ a.Schema.name; Dtype.to_string a.Schema.dtype;
           string_of_int (Dtype.width a.Schema.dtype); role ])
       (Schema.attributes e));
  Printf.printf
    "base tuple %d bytes -> extended %d bytes: +%d bytes (%.1f%%)  [paper: 42 -> 51, ~20%%]\n"
    (Schema.width daily_sales) (Schema.width e) (Schema_ext.width_overhead ext)
    (100.0 *. Schema_ext.overhead_ratio ext)

(* ---------- FIG4 + EX3.2: reader extraction ---------- *)

let fig4 () =
  T.section "FIG4 + EX3.2  Example relation state and the sessionVN=3 view";
  let _db, ext, table = figure4_table () in
  print_endline "Extended relation (paper Figure 4):";
  print_extended ext table;
  print_endline "\nA reader with sessionVN = 3 sees (paper Example 3.2):";
  let view = Reader.visible_relation ext ~session_vn:3 table in
  T.print ~header:(Schema.names daily_sales) (List.map Tuple.to_strings view);
  let expected =
    List.sort Tuple.compare
      [
        base_row "San Jose" "CA" "golf equip" 10 14 96 10000;
        base_row "Berkeley" "CA" "racquetball" 10 14 96 10000;
        base_row "Novato" "CA" "rollerblades" 10 13 96 8000;
      ]
  in
  Printf.printf "matches the paper: %b\n"
    (List.equal Tuple.equal expected (List.sort Tuple.compare view))

(* ---------- TAB1: read decision table ---------- *)

let tab1 () =
  T.section "TAB1  Decision table for extracting tuple versions (paper Table 1)";
  let ext = Schema_ext.extend daily_sales in
  let probe ~session_vn op =
    let tuple = ext_row ext 5 op "X" "CA" "pl" 1 1 99 100 (Value.Int 50) in
    match Reader.extract ext ~session_vn tuple with
    | None -> "ignore tuple"
    | Some t -> (
      match Tuple.get t 4 with
      | Value.Int 100 -> "read current attribute values"
      | Value.Int 50 -> "read pre-update attribute values"
      | v -> "read " ^ Value.to_string v)
  in
  T.print ~header:[ "version wanted"; "insert"; "update"; "delete" ]
    [
      [ "current (sessionVN >= tupleVN)"; probe ~session_vn:5 Op.Insert;
        probe ~session_vn:5 Op.Update; probe ~session_vn:5 Op.Delete ];
      [ "pre-update (sessionVN = tupleVN-1)"; probe ~session_vn:4 Op.Insert;
        probe ~session_vn:4 Op.Update; probe ~session_vn:4 Op.Delete ];
    ]

(* ---------- TAB2-4: maintenance decision tables ---------- *)

let tab234 () =
  T.section "TAB2-4  Maintenance decision tables (paper Tables 2-4)";
  (* Build a one-tuple table in a given (tupleVN, operation) state, apply a
     maintenance operation at vn 5, and describe the physical outcome. *)
  let describe maint_op ~prev_op ~prev_vn =
    let db = Database.create () in
    let ext = Schema_ext.extend daily_sales in
    let table = Database.create_table db "T" (Schema_ext.extended ext) in
    let rid =
      match prev_op with
      | None -> None
      | Some op ->
        Some (Table.insert table (ext_row ext prev_vn op "X" "CA" "pl" 1 1 99 100 (Value.Int 50)))
    in
    let outcome () =
      match (rid, Table.to_list table) with
      | Some r, _ -> (
        match Table.get table r with
        | None -> "physical delete"
        | Some t ->
          let vn = Option.get (Schema_ext.tuple_vn ext ~slot:1 t) in
          let op = Op.to_string (Schema_ext.operation ext ~slot:1 t) in
          let pre = Value.to_string (Tuple.get t (Schema_ext.pre_index ext ~slot:1 4)) in
          Printf.sprintf "update: vn=%d op=%s pre=%s" vn op pre)
      | None, [ (_, t) ] ->
        let op = Op.to_string (Schema_ext.operation ext ~slot:1 t) in
        Printf.sprintf "insert fresh tuple (op=%s)" op
      | None, _ -> "no tuple"
    in
    try
      (match maint_op with
      | `Insert -> ignore (Maintenance.apply_insert ext table ~vn:5 (base_row "X" "CA" "pl" 1 1 99 900))
      | `Update ->
        (match rid with
        | Some r -> Maintenance.apply_update ext table ~vn:5 r [ (4, Value.Int 900) ]
        | None -> failwith "n/a")
      | `Delete -> (
        match rid with Some r -> Maintenance.apply_delete ext table ~vn:5 r | None -> failwith "n/a"));
      outcome ()
    with
    | Op.Impossible _ -> "impossible"
    | Failure _ -> "n/a"
  in
  let table_for title maint_op =
    T.subsection title;
    T.print ~header:[ "previous state of tuple"; "action at maintenanceVN=5" ]
      [
        [ "no conflicting tuple"; describe maint_op ~prev_op:None ~prev_vn:0 ];
        [ "tupleVN<5, op=insert"; describe maint_op ~prev_op:(Some Op.Insert) ~prev_vn:3 ];
        [ "tupleVN<5, op=update"; describe maint_op ~prev_op:(Some Op.Update) ~prev_vn:3 ];
        [ "tupleVN<5, op=delete"; describe maint_op ~prev_op:(Some Op.Delete) ~prev_vn:3 ];
        [ "tupleVN=5, op=insert"; describe maint_op ~prev_op:(Some Op.Insert) ~prev_vn:5 ];
        [ "tupleVN=5, op=update"; describe maint_op ~prev_op:(Some Op.Update) ~prev_vn:5 ];
        [ "tupleVN=5, op=delete"; describe maint_op ~prev_op:(Some Op.Delete) ~prev_vn:5 ];
      ]
  in
  table_for "Table 2: logical INSERT" `Insert;
  table_for "Table 3: logical UPDATE" `Update;
  table_for "Table 4: logical DELETE" `Delete

(* ---------- FIG5/6 + EX3.3 ---------- *)

let fig56 () =
  T.section "FIG5+FIG6  The maintenanceVN=5 transaction on the Figure 4 state";
  let _db, ext, table = figure4_table () in
  print_endline "Maintenance operations (paper Figure 5):";
  print_endline "  insert (San Jose, CA, golf equip, 10/16/96, 11,000)";
  print_endline "  insert (Novato, CA, rollerblades, 10/13/96, 6,000)";
  print_endline "  update (San Jose, CA, golf equip, 10/14/96): 10,000 -> 10,200";
  print_endline "  delete (Berkeley, CA, racquetball, 10/14/96)";
  let stats = Maintenance.fresh_stats () in
  let key city pl m d y =
    [ Value.Str city; Value.Str "CA"; Value.Str pl; Value.date_of_mdy m d y ]
  in
  ignore (Maintenance.apply_insert ~stats ext table ~vn:5 (base_row "San Jose" "CA" "golf equip" 10 16 96 11000));
  ignore (Maintenance.apply_insert ~stats ext table ~vn:5 (base_row "Novato" "CA" "rollerblades" 10 13 96 6000));
  (match Table.find_by_key table (key "San Jose" "golf equip" 10 14 96) with
  | Some (rid, _) -> Maintenance.apply_update ~stats ext table ~vn:5 rid [ (4, Value.Int 10200) ]
  | None -> ());
  (match Table.find_by_key table (key "Berkeley" "racquetball" 10 14 96) with
  | Some (rid, _) -> Maintenance.apply_delete ~stats ext table ~vn:5 rid
  | None -> ());
  print_endline "\nResulting extended relation (paper Figure 6):";
  print_extended ext table;
  Printf.printf
    "physical operations: %d inserts, %d updates, %d deletes for %d logical ops\n"
    stats.Maintenance.physical_inserts stats.Maintenance.physical_updates
    stats.Maintenance.physical_deletes
    (stats.Maintenance.logical_inserts + stats.Maintenance.logical_updates
    + stats.Maintenance.logical_deletes);
  print_endline "(note the Novato insert became a physical update of the deleted tuple)"

(* ---------- EX4.1: reader query rewrite ---------- *)

let ex41 () =
  T.section "EX4.1  Query rewrite for readers (paper Example 4.1)";
  let db, ext, table = figure4_table () in
  ignore table;
  let lookup name = if name = "DailySales" then Some ext else None in
  let sql = "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state" in
  Printf.printf "original:  %s\nrewritten: %s\n\n" sql (Rewrite.reader_sql ~lookup sql);
  print_endline "Executing the rewritten query with :sessionVN = 3:";
  let r =
    Executor.query db
      ~params:[ ("sessionVN", Value.Int 3) ]
      (Rewrite.reader_select ~lookup (Vnl_sql.Parser.parse_select sql))
  in
  Format.printf "%a@." Executor.pp_result r

(* ---------- EX4.2-4.4: maintenance statement rewrites ---------- *)

let ex42_44 () =
  T.section "EX4.2-4.4  Maintenance statement rewrites (cursor approach)";
  let db, ext, table = figure4_table () in
  let lookup name = if name = "DailySales" then Some ext else None in
  let run label sql =
    let stats = Maintenance.fresh_stats () in
    let n = Rewrite.maintenance_sql ~stats db ~lookup ~vn:5 sql in
    Printf.printf "%s\n  %s\n  -> %d logical ops; physical: %d ins / %d upd / %d del\n" label sql
      n stats.Maintenance.physical_inserts stats.Maintenance.physical_updates
      stats.Maintenance.physical_deletes
  in
  run "EX4.2 INSERT with key conflict on a deleted tuple:"
    "INSERT INTO DailySales VALUES ('Novato', 'CA', 'rollerblades', DATE '10/13/96', 6000)";
  run "EX4.3 UPDATE adds 1,000 to San Jose 10/14:"
    "UPDATE DailySales SET total_sales = total_sales + 1000 \
     WHERE city = 'San Jose' AND date = DATE '10/14/96'";
  run "EX4.4 DELETE San Jose 10/15:"
    "DELETE FROM DailySales WHERE city = 'San Jose' AND date = DATE '10/15/96'";
  print_endline "\nResulting extended relation:";
  print_extended ext table

(* ---------- FIG7 + EX5.1: 4VNL ---------- *)

let fig7 () =
  T.section "FIG7 + EX5.1  A 4VNL tuple across three maintenance transactions";
  let db = Database.create () in
  let ext = Schema_ext.extend ~n:4 daily_sales in
  let table = Database.create_table db "DailySales" (Schema_ext.extended ext) in
  let rid = Maintenance.apply_insert ext table ~vn:3 (base_row "San Jose" "CA" "golf equip" 10 14 96 10000) in
  Maintenance.apply_update ext table ~vn:5 rid [ (4, Value.Int 10200) ];
  Maintenance.apply_delete ext table ~vn:6 rid;
  let t = Option.get (Table.get table rid) in
  print_endline "insert@3 (10,000), update@5 (10,200), delete@6 yields (paper Figure 7):";
  T.print ~header:[ "slot"; "tupleVN"; "operation"; "pre_total_sales" ]
    (List.map
       (fun slot ->
         [
           string_of_int slot;
           (match Schema_ext.tuple_vn ext ~slot t with Some v -> string_of_int v | None -> "-");
           (match Schema_ext.tuple_vn ext ~slot t with
           | Some _ -> Op.to_string (Schema_ext.operation ext ~slot t)
           | None -> "-");
           Value.to_string (Tuple.get t (Schema_ext.pre_index ext ~slot 4));
         ])
       [ 1; 2; 3 ]);
  Printf.printf "current total_sales = %s\n\n"
    (Value.to_string (Tuple.get t (Schema_ext.base_index ext 4)));
  print_endline "Visibility by sessionVN (paper Example 5.1):";
  T.print ~header:[ "sessionVN"; "reader sees" ]
    (List.map
       (fun s ->
         let outcome =
           try
             match Reader.extract ext ~session_vn:s t with
             | None -> "ignores the tuple"
             | Some b -> "total_sales = " ^ Value.to_string (Tuple.get b 4)
           with Reader.Session_expired _ -> "session expired"
         in
         [ string_of_int s; outcome ])
       [ 7; 6; 5; 4; 3; 2; 1 ])

let run () =
  fig3 ();
  fig4 ();
  tab1 ();
  tab234 ();
  fig56 ();
  ex41 ();
  ex42_44 ();
  fig7 ()
