(* EXPIRY: session expiration vs n and the §5 guarantee formula.

   Sessions of increasing length run against the daily maintenance pattern
   (23-hour transaction, 1-hour gap).  The formula (n-1)(i+m) - m gives the
   session length below which expiry is impossible; the simulation counts
   actual expirations on either side of that bound. *)

module Scenario = Vnl_workload.Scenario
module Expiry = Vnl_core.Expiry
module T = Vnl_util.Ascii_table

let gap = 60

let txn_len = 23 * 60

let session_lengths = [ 30; 60; 100; 240; 720; 1440 ]

let ns = [ 2; 3; 4 ]

let formula_table () =
  T.subsection "§5 guarantee: sessions up to (n-1)(i+m) - m minutes never expire";
  T.print ~header:[ "n"; "bound (minutes)"; "bound (hours)" ]
    (List.map
       (fun n ->
         let b = Expiry.never_expire_bound ~n ~gap ~txn_len in
         [ string_of_int n; string_of_int b; Printf.sprintf "%.1f" (float_of_int b /. 60.0) ])
       ns)

let simulation_matrix () =
  T.subsection "measured expirations over 4 simulated days (sessions every 45 min)";
  let rows =
    List.map
      (fun session_len ->
        Printf.sprintf "%d min" session_len
        :: List.map
             (fun n ->
               let cfg =
                 {
                   Scenario.default_config with
                   Scenario.days = 4;
                   session_len;
                   maintenance_len = txn_len;
                   maintenance_start = 9 * 60;
                   batch_per_day = 150;
                 }
               in
               let r = Scenario.run cfg (Scenario.Online n) in
               let bound = Expiry.never_expire_bound ~n ~gap ~txn_len in
               let guaranteed = session_len <= bound in
               let violated = guaranteed && r.Scenario.sessions_expired > 0 in
               Printf.sprintf "%d%s%s" r.Scenario.sessions_expired
                 (if guaranteed then " (guaranteed 0)" else "")
                 (if violated then " VIOLATION" else ""))
             ns)
      session_lengths
  in
  T.print ~header:("session length" :: List.map (fun n -> Printf.sprintf "%dVNL expired" n) ns) rows;
  print_endline
    "-> expirations appear only for session lengths beyond each n's guarantee;\n\
    \   raising n is the §5 tuning knob (commit-when-quiescent is the alternative,\n\
    \   at the price of writer starvation shown in the BLOCK experiment)."

let quiescent_measured () =
  T.subsection "commit-when-quiescent, measured (§2.1 alternative)";
  let base =
    {
      Scenario.default_config with
      Scenario.days = 3;
      session_len = 100;
      maintenance_len = txn_len;
    }
  in
  let scheduled = Scenario.run base (Scenario.Online 2) in
  let quiescent =
    Scenario.run { base with Scenario.commit_policy = Scenario.When_quiescent }
      (Scenario.Online 2)
  in
  T.print
    ~header:[ "commit policy"; "sessions expired"; "total commit wait (min)" ]
    [
      [ "scheduled"; string_of_int scheduled.Scenario.sessions_expired;
        string_of_int scheduled.Scenario.commit_wait_minutes ];
      [ "when quiescent"; string_of_int quiescent.Scenario.sessions_expired;
        string_of_int quiescent.Scenario.commit_wait_minutes ];
    ];
  print_endline
    "-> waiting for quiescence eliminates expiry but delays the maintenance commit\n\
    \   whenever sessions overlap (with denser sessions it starves indefinitely)."

let policies () =
  T.subsection "expiry-avoidance policies of §2.1";
  T.print ~header:[ "policy"; "sessions expire?"; "writer can starve?"; "extra storage" ]
    [
      [ Expiry.policy_name Expiry.Fixed_schedule; "yes (predictably)"; "no"; "none" ];
      [ Expiry.policy_name Expiry.Commit_when_quiescent; "never"; "yes"; "none" ];
      [ Expiry.policy_name (Expiry.More_versions 3); "pushed out per §5"; "no";
        "one slot per extra version" ];
    ]

let run () =
  T.section "EXPIRY  Session expiration and the nVNL window (§2.1, §5)";
  formula_table ();
  simulation_matrix ();
  quiescent_measured ();
  policies ()
