(* FIG1 / FIG2 / CONSIST: warehouse operating modes over simulated days.

   Figure 1 is the offline (maintain-at-night) policy; Figure 2 is 2VNL
   running a 23-hour maintenance transaction concurrently with reader
   sessions.  The consistency experiment quantifies §2's motivation: the
   analyst drill-down pairs that tear under read-uncommitted and never tear
   under 2VNL. *)

module Scenario = Vnl_workload.Scenario
module T = Vnl_util.Ascii_table

let row r =
  [
    Scenario.mode_name r.Scenario.mode;
    string_of_int r.Scenario.sessions_started;
    string_of_int r.Scenario.sessions_completed;
    string_of_int r.Scenario.sessions_rejected;
    string_of_int r.Scenario.sessions_expired;
    string_of_int (r.Scenario.queries_executed / 2);
    string_of_int r.Scenario.inconsistent_pairs;
    T.fmt_pct (Scenario.availability r);
    string_of_bool r.Scenario.view_matches_source;
  ]

let header =
  [ "mode"; "sessions"; "completed"; "rejected"; "expired"; "query pairs";
    "inconsistent"; "availability"; "final view ok" ]

let fig1 () =
  T.section "FIG1  Current approach: nightly offline maintenance";
  let night =
    { Scenario.default_config with Scenario.maintenance_start = 22 * 60; maintenance_len = 6 * 60 }
  in
  let r = Scenario.run night Scenario.Offline in
  print_endline (Scenario.render_timeline r);
  print_newline ();
  T.print ~header [ row r ];
  let heavy = Scenario.run Scenario.default_config Scenario.Offline in
  T.subsection "the same offline policy under Figure 2's 23-hour maintenance demand";
  T.print ~header [ row heavy ];
  Printf.printf
    "-> availability collapses to %s: the maintenance window bounds view size/count (§1).\n"
    (T.fmt_pct (Scenario.availability heavy))

let fig2 () =
  T.section "FIG2  2VNL: maintenance concurrent with reader sessions";
  let r = Scenario.run Scenario.default_config (Scenario.Online 2) in
  print_endline (Scenario.render_timeline r);
  print_newline ();
  T.print ~header [ row r ];
  Printf.printf
    "-> 24-hour availability; %d sessions expired (those overlapping a commit *and* the\n\
    \   next transaction's start, cf. the 8am/9am discussion in §2.1).\n"
    r.Scenario.sessions_expired

let consistency () =
  T.section "CONSIST  Drill-down consistency: 2VNL vs read-uncommitted (§2)";
  let vnl = Scenario.run Scenario.default_config (Scenario.Online 2) in
  let dirty = Scenario.run Scenario.default_config Scenario.Dirty in
  T.print ~header [ row vnl; row dirty ];
  Printf.printf
    "-> %d of %d analyst drill-down pairs tear without versioning; 0 under 2VNL\n\
    \   (readers and the maintenance transaction are serializable).\n"
    dirty.Scenario.inconsistent_pairs
    (dirty.Scenario.queries_executed / 2)

let freshness () =
  T.section "FRESH  More frequent maintenance: freshness vs expiry (§2.1 + §5)";
  print_endline
    "2VNL's point is that maintenance can be \"longer and/or more frequent\" (§2.1).\n\
     Splitting the same 12 hours/day of maintenance work into more, shorter\n\
     transactions makes warehouse data fresher -- but shrinks the gap i, so\n\
     long sessions need more versions (§5).  100-minute sessions, 3 days:\n";
  let rows =
    List.map
      (fun runs_per_day ->
        let maintenance_len = 12 * 60 / runs_per_day in
        let cfg =
          {
            Scenario.default_config with
            Scenario.runs_per_day;
            maintenance_len;
            session_len = 100;
            batch_per_day = 240;
          }
        in
        let spacing = (24 * 60) / runs_per_day in
        let gap = spacing - maintenance_len in
        let r2 = Scenario.run cfg (Scenario.Online 2) in
        let r3 = Scenario.run cfg (Scenario.Online 3) in
        let needed =
          Vnl_core.Expiry.versions_needed ~session_len:100 ~gap ~txn_len:maintenance_len
        in
        [
          string_of_int runs_per_day;
          string_of_int maintenance_len;
          string_of_int gap;
          Printf.sprintf "%.0f" r2.Scenario.avg_staleness_minutes;
          string_of_int r2.Scenario.sessions_expired;
          string_of_int r3.Scenario.sessions_expired;
          string_of_int needed;
        ])
      [ 1; 4; 12 ]
  in
  T.print
    ~header:
      [ "maintenance runs/day"; "txn len (min)"; "gap i (min)"; "avg staleness (min)";
        "expired (2VNL)"; "expired (3VNL)"; "n needed (formula)" ]
    rows;
  print_endline
    "-> splitting maintenance 1 -> 12 runs/day cuts data staleness by an order of\n\
    \   magnitude; once the gap drops below the session length, 2VNL starts expiring\n\
    \   sessions and the §5 formula says to move to 3VNL -- which measures zero."

let run () =
  fig1 ();
  fig2 ();
  consistency ();
  freshness ()
