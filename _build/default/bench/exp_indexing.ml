(* INDEX: 2VNL and indexing (§4.3).

   The paper argues that (a) indexes on the non-updatable group-by
   attributes of a summary table are unaffected by 2VNL, and (b) in the
   query-rewrite implementation an index on an updatable attribute is
   useless, because every reference to it is wrapped in a CASE expression
   the optimizer cannot see through.  Both are measured here: access paths
   chosen by the planner for rewritten queries, and the physical I/O of a
   selective rewritten query with and without the group-by index. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Buffer_pool = Vnl_storage.Buffer_pool
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Twovnl = Vnl_core.Twovnl
module Rewrite = Vnl_core.Rewrite
module Sales_gen = Vnl_workload.Sales_gen
module Xorshift = Vnl_util.Xorshift
module T = Vnl_util.Ascii_table

let build () =
  let db = Database.create ~pool_capacity:16 () in
  let wh = Twovnl.init db in
  let view = Sales_gen.daily_sales_view ~with_count:false () in
  let handle =
    Twovnl.register_table wh ~name:"DailySales" (Vnl_warehouse.View_def.target_schema view)
  in
  let rng = Xorshift.create 21 in
  let src = Vnl_warehouse.Source.create Sales_gen.sales_schema in
  Vnl_warehouse.Source.apply src
    (List.init 12_000 (fun i -> Vnl_warehouse.Delta.Insert (Sales_gen.gen_sale rng ~day:(i mod 60))));
  Twovnl.load_initial wh "DailySales" (Vnl_warehouse.Source.compute_view src view);
  (db, wh, handle)

let sql_city =
  "SELECT SUM(total_sales) FROM DailySales \
   WHERE city = 'San Jose' AND date = DATE '1996-11-20'"

let sql_sales = "SELECT city FROM DailySales WHERE total_sales = 500"

let measure db f =
  Database.drop_cache db;
  Database.reset_io_stats db;
  let r = f () in
  ignore r;
  (Database.io_stats db).Buffer_pool.misses

let run () =
  T.section "INDEX  Indexing under the 2VNL rewrite (§4.3)";
  let db, wh, handle = build () in
  let rewritten sql =
    Rewrite.reader_select ~lookup:(Twovnl.lookup wh) (Vnl_sql.Parser.parse_select sql)
  in
  let explain sql = Executor.explain db ~params:[ ("sessionVN", Value.Int 1) ] (rewritten sql) in
  let io sql =
    measure db (fun () ->
        Executor.query db ~params:[ ("sessionVN", Value.Int 1) ] (rewritten sql))
  in
  let groups = Table.tuple_count (Twovnl.table handle) in
  Printf.printf "%d summary groups; rewritten analyst queries under a 16-frame pool.\n\n" groups;
  let scan_path = explain sql_city and scan_io = io sql_city in
  let scan_path_upd = explain sql_sales and scan_io_upd = io sql_sales in
  Table.create_index (Twovnl.table handle) ~name:"idx_city" [ "city"; "date" ];
  Table.create_index (Twovnl.table handle) ~name:"idx_total_sales" [ "total_sales" ];
  let idx_path = explain sql_city and idx_io = io sql_city in
  let idx_path_upd = explain sql_sales and idx_io_upd = io sql_sales in
  T.print
    ~header:[ "rewritten query"; "indexes"; "access path"; "physical reads" ]
    [
      [ "WHERE city+date = ... (group-by attrs)"; "none"; scan_path; string_of_int scan_io ];
      [ "WHERE city+date = ... (group-by attrs)"; "idx_city"; idx_path; string_of_int idx_io ];
      [ "WHERE total_sales = ... (updatable)"; "none"; scan_path_upd; string_of_int scan_io_upd ];
      [ "WHERE total_sales = ... (updatable)"; "idx_total_sales"; idx_path_upd;
        string_of_int idx_io_upd ];
    ];
  print_endline
    "-> the group-by index keeps working through the rewrite (the predicate is\n\
    \   untouched) and cuts the scan to a handful of page reads; the index on the\n\
    \   updatable attribute is never chosen, because the rewrite wraps the\n\
    \   attribute in CASE (exactly the §4.3 caveat)."
