(* MICRO: Bechamel microbenchmarks for the CPU-side overhead of the 2VNL
   hot paths (§6 discusses run-time overhead qualitatively): per-tuple
   reader extraction, the reader query rewrite, maintenance decision-table
   application, unique-key probes, and version-pool fetches. *)

open Bechamel
open Toolkit
module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Dtype = Vnl_relation.Dtype
module Database = Vnl_query.Database
module Table = Vnl_query.Table
module Executor = Vnl_query.Executor
module Op = Vnl_core.Op
module Schema_ext = Vnl_core.Schema_ext
module Reader = Vnl_core.Reader
module Maintenance = Vnl_core.Maintenance
module Rewrite = Vnl_core.Rewrite
module Bptree = Vnl_index.Bptree
module Version_pool = Vnl_txn.Version_pool

let daily_sales =
  Schema.make
    [
      Schema.attr ~key:true "city" (Dtype.Str 20);
      Schema.attr ~key:true "state" (Dtype.Str 2);
      Schema.attr ~key:true "product_line" (Dtype.Str 12);
      Schema.attr ~key:true "date" Dtype.Date;
      Schema.attr ~updatable:true "total_sales" Dtype.Int;
    ]

let ext = Schema_ext.extend daily_sales

let ext_tuple =
  Tuple.make (Schema_ext.extended ext)
    [
      Value.Int 4; Op.to_value Op.Update; Value.Str "San Jose"; Value.Str "CA";
      Value.Str "golf equip"; Value.date_of_mdy 10 14 96; Value.Int 12000; Value.Int 10000;
    ]

let bench_extract_current =
  Test.make ~name:"reader extract (current version)"
    (Staged.stage (fun () -> Reader.extract ext ~session_vn:4 ext_tuple))

let bench_extract_pre =
  Test.make ~name:"reader extract (pre-update version)"
    (Staged.stage (fun () -> Reader.extract ext ~session_vn:3 ext_tuple))

let analyst_query =
  "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state"

let lookup name = if String.equal name "DailySales" then Some ext else None

let parsed_query = Vnl_sql.Parser.parse_select analyst_query

let bench_rewrite =
  Test.make ~name:"reader query rewrite (Example 4.1)"
    (Staged.stage (fun () -> Rewrite.reader_select ~lookup parsed_query))

let bench_parse_and_rewrite =
  Test.make ~name:"parse + rewrite + print"
    (Staged.stage (fun () -> Rewrite.reader_sql ~lookup analyst_query))

(* Maintenance update applied to a one-tuple table, alternating values so
   the work does not degenerate. *)
let maint_setup () =
  let db = Database.create () in
  let table = Database.create_table db "T" (Schema_ext.extended ext) in
  let rid =
    Maintenance.apply_insert ext table ~vn:2
      (Tuple.make daily_sales
         [ Value.Str "San Jose"; Value.Str "CA"; Value.Str "golf equip";
           Value.date_of_mdy 10 14 96; Value.Int 100 ])
  in
  (table, rid)

let bench_maintenance_update =
  let table, rid = maint_setup () in
  let vn = ref 3 in
  Test.make ~name:"maintenance update (Table 3 step)"
    (Staged.stage (fun () ->
         incr vn;
         Maintenance.apply_update ext table ~vn:!vn rid [ (4, Value.Int !vn) ]))

let bench_bptree_probe =
  let tree = Bptree.create () in
  let () =
    for i = 0 to 9999 do
      Bptree.insert tree [ Value.Int i ] i
    done
  in
  let i = ref 0 in
  Test.make ~name:"B+-tree key probe (10k keys)"
    (Staged.stage (fun () ->
         i := (!i + 7919) mod 10000;
         Bptree.find tree [ Value.Int !i ]))

let bench_pool_fetch =
  let disk = Vnl_storage.Disk.create () in
  let bp = Vnl_storage.Buffer_pool.create ~capacity:64 disk in
  let pool = Version_pool.create bp daily_sales in
  let key = { Version_pool.page = 0; slot = 0 } in
  let () =
    for vn = 1 to 8 do
      Version_pool.stash pool ~key ~vn
        (Tuple.make daily_sales
           [ Value.Str "San Jose"; Value.Str "CA"; Value.Str "golf equip";
             Value.date_of_mdy 10 14 96; Value.Int (vn * 100) ])
    done
  in
  Test.make ~name:"version-pool fetch (8-deep chain)"
    (Staged.stage (fun () -> Version_pool.fetch pool ~key ~max_vn:2))

let bench_group_by_query =
  let db = Database.create ~pool_capacity:512 () in
  let table = Database.create_table db "DailySales" daily_sales in
  let rng = Vnl_util.Xorshift.create 3 in
  let () =
    List.iteri
      (fun i (city, state) ->
        ignore i;
        List.iteri
          (fun d pl ->
            ignore
              (Table.insert table
                 (Tuple.make daily_sales
                    [ Value.Str city; Value.Str state; Value.Str pl;
                      Value.date_of_mdy 10 ((d mod 27) + 1) 96;
                      Value.Int (Vnl_util.Xorshift.int rng 1000) ])))
          [ "golf equip"; "racquetball"; "tennis"; "running" ])
      (Array.to_list Vnl_workload.Sales_gen.cities)
  in
  Test.make ~name:"group-by query (48 rows)"
    (Staged.stage (fun () -> Executor.query_string db analyst_query))

(* §5: "the higher n is, the more overhead we incur in ... run-time costs"
   — measure per-tuple extraction of the oldest readable version as n
   grows. *)
let bench_extract_by_n =
  Test.make_indexed ~name:"nVNL extract oldest version" ~args:[ 2; 3; 4; 6 ] (fun n ->
      let extn = Schema_ext.extend ~n daily_sales in
      let db = Database.create () in
      let table = Database.create_table db "N" (Schema_ext.extended extn) in
      let rid =
        Maintenance.apply_insert extn table ~vn:2
          (Tuple.make daily_sales
             [ Value.Str "San Jose"; Value.Str "CA"; Value.Str "golf equip";
               Value.date_of_mdy 10 14 96; Value.Int 100 ])
      in
      for vn = 3 to n + 1 do
        Maintenance.apply_update extn table ~vn rid [ (4, Value.Int (vn * 10)) ]
      done;
      let tuple = Option.get (Table.get table rid) in
      Staged.stage (fun () -> Reader.extract extn ~session_vn:2 tuple))

let tests =
  Test.make_grouped ~name:"vnl"
    [
      bench_extract_current;
      bench_extract_pre;
      bench_extract_by_n;
      bench_rewrite;
      bench_parse_and_rewrite;
      bench_maintenance_update;
      bench_bptree_probe;
      bench_pool_fetch;
      bench_group_by_query;
    ]

let run () =
  Vnl_util.Ascii_table.section "MICRO  CPU cost of the 2VNL hot paths (Bechamel)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | _ -> "?"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Vnl_util.Ascii_table.print ~header:[ "benchmark"; "ns/run" ]
    (List.sort compare !rows);
  print_endline
    "-> per-tuple extraction and decision-table steps are tens to hundreds of\n\
    \   nanoseconds: the run-time overhead 2VNL adds to reads is small (§6)."
