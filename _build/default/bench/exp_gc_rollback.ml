(* GC and ROLLBACK: the §7 future-work mechanisms, implemented and
   measured.

   GC: a week of maintenance with deletions, with and without daily garbage
   collection; physical tuple population over time.

   ROLLBACK: abort a maintenance transaction mid-batch and revert from the
   tuples' own pre-update versions; compares the bookkeeping footprint with
   classical before-image logging. *)

module Value = Vnl_relation.Value
module Tuple = Vnl_relation.Tuple
module Schema = Vnl_relation.Schema
module Table = Vnl_query.Table
module Twovnl = Vnl_core.Twovnl
module Schema_ext = Vnl_core.Schema_ext
module Warehouse = Vnl_warehouse.Warehouse
module Sales_gen = Vnl_workload.Sales_gen
module Xorshift = Vnl_util.Xorshift
module T = Vnl_util.Ascii_table

let gc_experiment () =
  T.subsection "GC of logically deleted tuples over 7 daily maintenance runs";
  let run_week ~with_gc =
    let rng = Xorshift.create 11 in
    let wh = Warehouse.create ~pool_capacity:256 [ Sales_gen.daily_sales_view () ] in
    Warehouse.queue_changes wh ~view:"DailySales"
      (Sales_gen.initial_load rng ~days:4 ~sales_per_day:150);
    ignore (Warehouse.refresh wh);
    let handle = Twovnl.handle_exn (Warehouse.vnl wh) "DailySales" in
    let physical = ref [] and live = ref [] and reclaimed = ref 0 in
    for day = 0 to 6 do
      let src = Warehouse.source wh "DailySales" in
      Warehouse.queue_changes wh ~view:"DailySales"
        (Sales_gen.gen_batch rng src ~day:(day + 4) ~inserts:60 ~updates:40 ~deletes:80);
      ignore (Warehouse.refresh wh);
      if with_gc then reclaimed := !reclaimed + Warehouse.collect_garbage wh;
      physical := Table.tuple_count (Twovnl.table handle) :: !physical;
      let s = Warehouse.begin_session wh in
      live := List.length (Warehouse.read_view wh s "DailySales") :: !live;
      Warehouse.end_session wh s
    done;
    (List.rev !physical, List.rev !live, !reclaimed)
  in
  let no_gc, live, _ = run_week ~with_gc:false in
  let with_gc, live', reclaimed = run_week ~with_gc:true in
  let days = List.init 7 (fun d -> Printf.sprintf "day %d" (d + 1)) in
  T.print
    ~header:("physical tuples" :: days)
    [
      "without GC" :: List.map string_of_int no_gc;
      "with daily GC" :: List.map string_of_int with_gc;
      "live groups" :: List.map string_of_int live;
    ];
  assert (live = live');
  Printf.printf
    "-> %d tombstones reclaimed across the week; reader views are identical with\n\
    \   and without GC (checked), since only tuples no session can need are removed.\n"
    reclaimed

let rollback_experiment () =
  T.subsection "no-log rollback of an aborted maintenance transaction (§7)";
  let rng = Xorshift.create 5 in
  let wh = Warehouse.create ~pool_capacity:256 [ Sales_gen.daily_sales_view () ] in
  Warehouse.queue_changes wh ~view:"DailySales"
    (Sales_gen.initial_load rng ~days:4 ~sales_per_day:150);
  ignore (Warehouse.refresh wh);
  let vnl = Warehouse.vnl wh in
  let handle = Twovnl.handle_exn vnl "DailySales" in
  let snapshot () =
    let s = Twovnl.Session.begin_ vnl in
    let rows = Twovnl.Session.read_table vnl s "DailySales" in
    Twovnl.Session.end_ vnl s;
    List.sort Tuple.compare rows
  in
  let before = snapshot () in
  let src = Warehouse.source wh "DailySales" in
  let batch = Sales_gen.gen_batch rng src ~day:9 ~inserts:120 ~updates:80 ~deletes:40 in
  let txn = Twovnl.Txn.begin_ vnl in
  ignore (Vnl_warehouse.Summary.apply_batch txn (Warehouse.view wh "DailySales") batch);
  let stats = Twovnl.Txn.stats txn in
  let touched =
    stats.Vnl_core.Maintenance.physical_inserts + stats.Vnl_core.Maintenance.physical_updates
    + stats.Vnl_core.Maintenance.physical_deletes
  in
  let reverted = Twovnl.Txn.abort txn in
  let after = snapshot () in
  let restored = List.equal Tuple.equal before after in
  let ext = Twovnl.ext handle in
  let base_width = Schema.width (Schema_ext.base ext) in
  T.print ~header:[ "metric"; "value" ]
    [
      [ "physical tuple ops in aborted txn"; string_of_int touched ];
      [ "tuples reverted from their own pre-update versions"; string_of_int reverted ];
      [ "reader-visible state exactly restored"; string_of_bool restored ];
      [ "before-image log a WAL engine would have written";
        Printf.sprintf "~%d bytes" (touched * base_width) ];
      [ "log written by 2VNL"; "0 bytes (versions live in the tuples)" ];
    ];
  if not restored then print_endline "ERROR: rollback failed to restore the state!"

let recovery_experiment () =
  T.subsection "no-log crash recovery: reopen from disk mid-maintenance";
  let rng = Xorshift.create 17 in
  let db = Vnl_query.Database.create () in
  let wh = Twovnl.init db in
  let view = Sales_gen.daily_sales_view () in
  ignore
    (Twovnl.register_table wh ~name:"DailySales"
       (Vnl_warehouse.View_def.target_schema view));
  let src = Vnl_warehouse.Source.create Sales_gen.sales_schema in
  Vnl_warehouse.Source.apply src
    (List.init 3_000 (fun i -> Vnl_warehouse.Delta.Insert (Sales_gen.gen_sale rng ~day:(i mod 20))));
  Twovnl.load_initial wh "DailySales" (Vnl_warehouse.Source.compute_view src view);
  let snapshot w =
    let s = Twovnl.Session.begin_ w in
    let rows = Twovnl.Session.read_table w s "DailySales" in
    Twovnl.Session.end_ w s;
    List.sort Tuple.compare rows
  in
  let committed = snapshot wh in
  (* A maintenance transaction dies mid-batch with dirty pages flushed. *)
  let m = Twovnl.Txn.begin_ wh in
  ignore (Twovnl.Txn.sql m "UPDATE DailySales SET total_sales = 0 WHERE state = 'CA'");
  ignore (Twovnl.Txn.sql m "DELETE FROM DailySales WHERE city = 'Reno'");
  Vnl_query.Database.save db;
  let db2 = Vnl_query.Database.reopen (Vnl_query.Database.disk db) in
  let wh2 = Twovnl.attach db2 in
  ignore
    (Twovnl.attach_table wh2 ~name:"DailySales" (Vnl_warehouse.View_def.target_schema view));
  let reverted = Twovnl.recover wh2 in
  let restored = List.equal Tuple.equal committed (snapshot wh2) in
  T.print ~header:[ "metric"; "value" ]
    [
      [ "groups at crash"; string_of_int (List.length committed) ];
      [ "tuples reverted at restart"; string_of_int reverted ];
      [ "recovered state = last committed state"; string_of_bool restored ];
      [ "redo/undo log consulted"; "none (versions live in the tuples)" ];
    ];
  if not restored then print_endline "ERROR: crash recovery failed!"

let run () =
  T.section "GC + ROLLBACK  The §7 mechanisms";
  gc_experiment ();
  rollback_experiment ();
  recovery_experiment ()
