(* BLOCK: reader/writer blocking across concurrency-control schemes
   (§1, §6).

   The same deterministic workload — a long maintenance writer sweeping 60%
   of the items plus a stream of reader transactions — replayed under
   strict 2PL, 2V2PL, MV2PL, and 2VNL.  Time is in simulator ticks. *)

module Cc_sim = Vnl_workload.Cc_sim
module Stats = Vnl_util.Stats
module T = Vnl_util.Ascii_table

let report_row r =
  [
    Cc_sim.scheme_name r.Cc_sim.scheme;
    T.fmt_float r.Cc_sim.reader_latency.Stats.mean;
    T.fmt_float r.Cc_sim.reader_latency.Stats.p99;
    T.fmt_float r.Cc_sim.reader_blocked.Stats.mean;
    string_of_int r.Cc_sim.writer_span;
    string_of_int r.Cc_sim.writer_commit_wait;
    string_of_int r.Cc_sim.lock_acquisitions;
    string_of_int r.Cc_sim.deadlock_aborts;
    string_of_int r.Cc_sim.makespan;
  ]

let header =
  [ "scheme"; "reader mean"; "reader p99"; "blocked mean"; "writer span";
    "commit wait"; "locks"; "deadlocks"; "makespan" ]

let main_comparison () =
  T.subsection "default workload (40 readers x 12 reads, writer sweeps 60/100 items)";
  T.print ~header (List.map report_row (Cc_sim.run_all Cc_sim.default_config));
  print_endline
    "-> strict 2PL blocks readers behind the writer (and deadlocks); 2V2PL frees\n\
    \   readers but delays the writer's commit (readers-delay-writer, §6); MV2PL\n\
    \   and 2VNL block nobody, and only 2VNL also places zero locks."

let contention_sweep () =
  T.subsection "reader-latency mean as writer coverage grows (items written of 100)";
  let coverages = [ 20; 40; 60; 80; 100 ] in
  let rows =
    List.map
      (fun scheme ->
        Cc_sim.scheme_name scheme
        :: List.map
             (fun writer_items ->
               let cfg = { Cc_sim.default_config with Cc_sim.writer_items } in
               let r = Cc_sim.run cfg scheme in
               T.fmt_float r.Cc_sim.reader_latency.Stats.mean)
             coverages)
      Cc_sim.all_schemes
  in
  T.print ~header:("scheme" :: List.map string_of_int coverages) rows;
  print_endline "-> lock-based reader latency grows with maintenance coverage; versioned schemes are flat."

let starvation () =
  T.subsection "2V2PL writer commit wait as reader pressure grows (arrival gap, ticks)";
  let gaps = [ 10; 5; 3; 2 ] in
  T.print
    ~header:("arrival gap" :: List.map string_of_int gaps)
    [
      "2V2PL commit wait"
      :: List.map
           (fun arrival_gap ->
             let cfg = { Cc_sim.default_config with Cc_sim.arrival_gap; readers = 80 } in
             string_of_int (Cc_sim.run cfg Cc_sim.V2pl2).Cc_sim.writer_commit_wait)
           gaps;
      "2VNL commit wait"
      :: List.map
           (fun arrival_gap ->
             let cfg = { Cc_sim.default_config with Cc_sim.arrival_gap; readers = 80 } in
             string_of_int (Cc_sim.run cfg Cc_sim.Vnl2).Cc_sim.writer_commit_wait)
           gaps;
    ];
  print_endline
    "-> denser reader arrivals stretch the 2V2PL commit wait (readers can starve\n\
    \   the maintenance transaction); 2VNL commits immediately regardless."

let run () =
  T.section "BLOCK  Blocking and locking across CC schemes (§1, §6)";
  main_comparison ();
  contention_sweep ();
  starvation ()
