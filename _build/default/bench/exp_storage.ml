(* STORAGE: the space costs of 2VNL/nVNL versus the MV2PL version pool
   (§3.1, §6).

   2VNL pays a fixed per-tuple extension (bookkeeping plus one pre-update
   copy per updatable attribute) whether or not the tuple is ever updated;
   MV2PL pays nothing up front but one pool record per stashed before-image.
   The sweep shows the paper's qualitative claims: the extension is cheap
   for summary tables (few updatable attributes) and 2VNL wins when
   maintenance touches a large fraction of tuples. *)

module Dtype = Vnl_relation.Dtype
module Value = Vnl_relation.Value
module Schema = Vnl_relation.Schema
module Tuple = Vnl_relation.Tuple
module Schema_ext = Vnl_core.Schema_ext
module T = Vnl_util.Ascii_table

(* A synthetic relation with [total] attributes of which [updatable] are
   updatable 4-byte ints; one 4-byte key. *)
let synthetic ~total ~updatable =
  if updatable >= total then invalid_arg "synthetic";
  Schema.make
    (Schema.attr ~key:true "k" Dtype.Int
    :: List.init (total - 1) (fun i ->
           Schema.attr ~updatable:(i < updatable) (Printf.sprintf "a%d" i) Dtype.Int))

let overhead_sweep () =
  T.subsection "schema-extension overhead vs updatable fraction and n (% of base width)";
  let header =
    "updatable attrs (of 8)" :: List.map (fun n -> Printf.sprintf "n=%d" n) [ 2; 3; 4; 5 ]
  in
  let rows =
    List.map
      (fun upd ->
        string_of_int upd
        :: List.map
             (fun n ->
               let ext = Schema_ext.extend ~n (synthetic ~total:8 ~updatable:upd) in
               T.fmt_pct (Schema_ext.overhead_ratio ext))
             [ 2; 3; 4; 5 ])
      [ 1; 2; 4; 7 ]
  in
  T.print ~header rows;
  print_endline "(8 x 4-byte attributes; worst case n=2 with everything updatable ~ doubles the tuple, §3.1)"

let daily_sales_numbers () =
  T.subsection "the paper's DailySales numbers (Figure 3)";
  let daily_sales =
    Schema.make
      [
        Schema.attr ~key:true "city" (Dtype.Str 20);
        Schema.attr ~key:true "state" (Dtype.Str 2);
        Schema.attr ~key:true "product_line" (Dtype.Str 12);
        Schema.attr ~key:true "date" Dtype.Date;
        Schema.attr ~updatable:true "total_sales" Dtype.Int;
      ]
  in
  T.print ~header:[ "n"; "bytes/tuple"; "overhead" ]
    (List.map
       (fun n ->
         let ext = Schema_ext.extend ~n daily_sales in
         [
           string_of_int n;
           string_of_int (Schema.width (Schema_ext.extended ext));
           T.fmt_pct (Schema_ext.overhead_ratio ext);
         ])
       [ 2; 3; 4 ])

(* Compare total bytes: 2VNL extension vs MV2PL version-pool records, as a
   function of the fraction of tuples a maintenance transaction updates. *)
let vs_version_pool () =
  T.subsection "2VNL extension vs MV2PL version pool (bytes per 10,000-tuple summary table)";
  let base = synthetic ~total:8 ~updatable:2 in
  let ext = Schema_ext.extend base in
  let tuples = 10_000 in
  let base_w = Schema.width base in
  let vnl_extra = tuples * Schema_ext.width_overhead ext in
  (* An MV2PL pool record stores the version number plus the full
     before-image (CFL+82 copies whole tuples). *)
  let pool_record = 4 + base_w in
  let header = [ "tuples updated"; "2VNL extra bytes"; "MV2PL pool bytes"; "cheaper" ] in
  let rows =
    List.map
      (fun pct ->
        let updated = tuples * pct / 100 in
        let pool = updated * pool_record in
        [
          Printf.sprintf "%d%%" pct;
          string_of_int vnl_extra;
          string_of_int pool;
          (if pool < vnl_extra then "MV2PL" else "2VNL");
        ])
      [ 1; 5; 10; 25; 50; 100 ]
  in
  T.print ~header rows;
  Printf.printf
    "crossover at ~%d%% of tuples updated per transaction; warehouse maintenance\n\
     batches routinely touch most groups of a summary table (§6).\n\
     (2V2PL holds one transient second version per updated tuple -- %d bytes\n\
     each -- but frees them at commit, which is exactly why its writer must\n\
     wait for readers; 2VNL's copies persist and the writer never waits.)\n"
    (100 * Schema_ext.width_overhead ext / pool_record)
    base_w

let run () =
  T.section "STORAGE  Space overhead of version bookkeeping (§3.1, §6)";
  daily_sales_numbers ();
  overhead_sweep ();
  vs_version_pool ()
