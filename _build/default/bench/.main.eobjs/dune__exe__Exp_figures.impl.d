bench/exp_figures.ml: Format List Option Printf String Vnl_core Vnl_query Vnl_relation Vnl_sql Vnl_util
