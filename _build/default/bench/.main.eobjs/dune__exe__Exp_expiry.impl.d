bench/exp_expiry.ml: List Printf Vnl_core Vnl_util Vnl_workload
