bench/exp_ablation.ml: Hashtbl List Printf Vnl_core Vnl_query Vnl_relation Vnl_util
