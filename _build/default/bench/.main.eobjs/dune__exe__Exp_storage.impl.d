bench/exp_storage.ml: List Printf Vnl_core Vnl_relation Vnl_util
