bench/main.ml: Array Exp_ablation Exp_blocking Exp_expiry Exp_figures Exp_gc_rollback Exp_indexing Exp_io Exp_scenarios Exp_storage List Micro String Sys
