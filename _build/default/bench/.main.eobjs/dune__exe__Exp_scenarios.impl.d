bench/exp_scenarios.ml: List Printf Vnl_core Vnl_util Vnl_workload
