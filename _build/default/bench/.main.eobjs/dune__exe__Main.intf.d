bench/main.mli:
