bench/exp_io.ml: Array List Printf Vnl_core Vnl_query Vnl_relation Vnl_storage Vnl_txn Vnl_util
