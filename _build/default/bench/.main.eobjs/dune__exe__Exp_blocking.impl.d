bench/exp_blocking.ml: List Vnl_util Vnl_workload
